//! Per-component energy bookkeeping.
//!
//! The 367.5 pJ/conversion headline number decomposes into ring-oscillator,
//! counter, controller and arithmetic contributions; the ledger keeps the
//! breakdown so the energy table (T1) can be regenerated.
//!
//! Storage is inline (a fixed array of `(&'static str, Joule)` slots): every
//! [`Reading`](../../ptsim_core/pipeline/output/struct.Reading.html) owns its
//! ledger, and the conversion hot path must not allocate per die. A
//! conversion charges ~7 distinct components; should more than
//! [`EnergyLedger::CAPACITY`] distinct names ever be charged, the excess is
//! folded into a single `"(other)"` bucket so totals stay exact and `add`
//! never fails.

use ptsim_device::units::Joule;
use std::fmt;

/// Name of the overflow bucket that absorbs components beyond
/// [`EnergyLedger::CAPACITY`].
const OVERFLOW: &str = "(other)";

/// Accumulates energy per named component, allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLedger {
    names: [&'static str; EnergyLedger::CAPACITY],
    energy: [Joule; EnergyLedger::CAPACITY],
    len: usize,
    other: Joule,
    has_other: bool,
}

impl EnergyLedger {
    /// Distinct component slots stored inline.
    pub const CAPACITY: usize = 12;

    /// Empty ledger.
    #[must_use]
    pub fn new() -> Self {
        EnergyLedger {
            names: [""; Self::CAPACITY],
            energy: [Joule::ZERO; Self::CAPACITY],
            len: 0,
            other: Joule::ZERO,
            has_other: false,
        }
    }

    /// Adds energy to a component, creating it if needed. Components beyond
    /// [`EnergyLedger::CAPACITY`] distinct names accumulate under
    /// `"(other)"`.
    #[inline]
    pub fn add(&mut self, component: &'static str, energy: Joule) {
        for i in 0..self.len {
            if self.names[i] == component {
                self.energy[i] += energy;
                return;
            }
        }
        if self.len < Self::CAPACITY {
            self.names[self.len] = component;
            self.energy[self.len] = energy;
            self.len += 1;
        } else {
            self.other += energy;
            self.has_other = true;
        }
    }

    /// Energy attributed to one component (zero if absent).
    #[must_use]
    pub fn component(&self, name: &str) -> Joule {
        if self.has_other && name == OVERFLOW {
            return self.other;
        }
        self.names[..self.len]
            .iter()
            .position(|n| *n == name)
            .map(|i| self.energy[i])
            .unwrap_or(Joule::ZERO)
    }

    /// Total energy across components.
    #[must_use]
    pub fn total(&self) -> Joule {
        let mut total = self.energy[..self.len].iter().copied().sum::<Joule>();
        if self.has_other {
            total += self.other;
        }
        total
    }

    /// Iterates `(component, energy)` in insertion order (the `"(other)"`
    /// overflow bucket, if any, comes last).
    pub fn iter(&self) -> impl Iterator<Item = (&str, Joule)> {
        self.names[..self.len]
            .iter()
            .zip(&self.energy[..self.len])
            .map(|(n, e)| (*n, *e))
            .chain(self.has_other.then_some((OVERFLOW, self.other)))
    }

    /// Number of distinct components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len + usize::from(self.has_other)
    }

    /// True if no energy has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0 && !self.has_other
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for i in 0..other.len {
            self.add(other.names[i], other.energy[i]);
        }
        if other.has_other {
            self.other += other.other;
            self.has_other = true;
        }
    }

    /// Renders the breakdown as an aligned text table in picojoules.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(9)
            .max("component".len());
        out.push_str(&format!("{:<width$}  energy [pJ]   share\n", "component"));
        let total = self.total().0.max(f64::MIN_POSITIVE);
        for (n, e) in self.iter() {
            out.push_str(&format!(
                "{:<width$}  {:>11.2}   {:>5.1}%\n",
                n,
                e.picojoules(),
                100.0 * e.0 / total,
            ));
        }
        out.push_str(&format!(
            "{:<width$}  {:>11.2}   100.0%\n",
            "TOTAL",
            self.total().picojoules(),
        ));
        out
    }
}

impl Default for EnergyLedger {
    fn default() -> Self {
        EnergyLedger::new()
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_per_component() {
        let mut l = EnergyLedger::new();
        l.add("ro", Joule::from_picojoules(100.0));
        l.add("ro", Joule::from_picojoules(50.0));
        l.add("counter", Joule::from_picojoules(25.0));
        assert!((l.component("ro").picojoules() - 150.0).abs() < 1e-9);
        assert!((l.total().picojoules() - 175.0).abs() < 1e-9);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn missing_component_is_zero() {
        let l = EnergyLedger::new();
        assert_eq!(l.component("nothing"), Joule::ZERO);
        assert!(l.is_empty());
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = EnergyLedger::new();
        a.add("x", Joule(1.0));
        let mut b = EnergyLedger::new();
        b.add("x", Joule(2.0));
        b.add("y", Joule(3.0));
        a.merge(&b);
        assert_eq!(a.component("x").0, 3.0);
        assert_eq!(a.component("y").0, 3.0);
    }

    #[test]
    fn table_lists_components_and_total() {
        let mut l = EnergyLedger::new();
        l.add("oscillators", Joule::from_picojoules(200.0));
        l.add("counters", Joule::from_picojoules(100.0));
        let t = l.render_table();
        assert!(t.contains("oscillators"));
        assert!(t.contains("TOTAL"));
        assert!(t.contains("300.00"));
        assert!(t.contains("66.7%"));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut l = EnergyLedger::new();
        l.add("b", Joule(1.0));
        l.add("a", Joule(1.0));
        let names: Vec<&str> = l.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn overflow_folds_into_other_without_losing_energy() {
        const NAMES: [&str; 14] = [
            "c00", "c01", "c02", "c03", "c04", "c05", "c06", "c07", "c08", "c09", "c10", "c11",
            "c12", "c13",
        ];
        let mut l = EnergyLedger::new();
        for (i, n) in NAMES.iter().enumerate() {
            l.add(n, Joule((i + 1) as f64));
        }
        // 12 inline slots + one "(other)" bucket absorbing the last two.
        assert_eq!(l.len(), EnergyLedger::CAPACITY + 1);
        assert_eq!(l.component("(other)").0, 13.0 + 14.0);
        let expected: f64 = (1..=14).map(|i| i as f64).sum();
        assert!((l.total().0 - expected).abs() < 1e-12);
        // Existing components still accumulate inline after overflow.
        l.add("c00", Joule(1.0));
        assert_eq!(l.component("c00").0, 2.0);
        // Merging an overflowed ledger keeps the bucket.
        let mut m = EnergyLedger::new();
        m.merge(&l);
        assert_eq!(m.total(), l.total());
        assert_eq!(m.component("(other)"), l.component("(other)"));
    }
}
