//! Property-based tests of the circuit-block invariants.

use ptsim_circuit::counter::{auto_measure, GatedCounter, Prescaler};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_circuit::fixed::{Fixed, QFormat};
use ptsim_device::units::{Hertz, Joule};
use ptsim_rng::forall;

forall! {
    #[test]
    fn fixed_sub_is_add_of_negation(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
        let q = QFormat::Q16_16;
        let x = Fixed::from_f64(a, q);
        let y = Fixed::from_f64(b, q);
        assert_eq!(x.sub(y).unwrap(), x.add(y.neg()).unwrap());
    }

    #[test]
    fn fixed_saturation_is_idempotent(v in ptsim_rng::check::NORMAL_F64) {
        let q = QFormat::Q8_8;
        let once = Fixed::from_f64(v, q);
        let twice = Fixed::from_f64(once.to_f64(), q);
        assert_eq!(once, twice);
    }

    #[test]
    fn fixed_abs_is_nonnegative(v in -30000.0f64..30000.0) {
        let q = QFormat::Q16_16;
        assert!(Fixed::from_f64(v, q).abs().to_f64() >= 0.0);
    }

    #[test]
    fn fixed_div_then_mul_round_trips(a in 1.0f64..100.0, b in 1.0f64..100.0) {
        let q = QFormat::Q16_16;
        let x = Fixed::from_f64(a, q);
        let y = Fixed::from_f64(b, q);
        let back = x.div(y).unwrap().mul(y).unwrap().to_f64();
        // Two rounding steps, each ≤ LSB/2, amplified by |y|.
        assert!((back - x.to_f64()).abs() <= q.resolution() * (2.0 + b));
    }

    #[test]
    fn fixed_mul_is_sign_symmetric(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        // Rounding must mirror through negation: no floor-bias on
        // negative products (the half-LSB asymmetry fixed in `mul`).
        let q = QFormat::Q16_16;
        let x = Fixed::from_f64(a, q);
        let y = Fixed::from_f64(b, q);
        assert_eq!(x.neg().mul(y).unwrap(), x.mul(y).unwrap().neg());
        assert_eq!(x.mul(y.neg()).unwrap(), x.mul(y).unwrap().neg());
    }

    #[test]
    fn fixed_mul_error_within_half_lsb(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        // Raw products here stay below 2^53, so the f64 reference product
        // is exact and round-to-nearest must land within half an LSB.
        let q = QFormat::Q16_16;
        let x = Fixed::from_f64(a, q);
        let y = Fixed::from_f64(b, q);
        let exact = x.to_f64() * y.to_f64();
        assert!((x.mul(y).unwrap().to_f64() - exact).abs() <= q.resolution() / 2.0);
    }

    #[test]
    fn fixed_mul_saturates_at_format_extremes(a in 70000.0f64..1e6, b in 70000.0f64..1e6) {
        // Q16.16 overflows for any product of two > 2^16 magnitudes: the
        // result must pin to the format limits instead of wrapping.
        let q = QFormat::Q16_16;
        let x = Fixed::from_f64(a, q);
        let y = Fixed::from_f64(b, q);
        let hi = x.mul(y).unwrap();
        assert!((hi.to_f64() - q.max_value()).abs() < 1e-9);
        let lo = x.mul(y.neg()).unwrap();
        assert!(lo.to_f64() <= -q.max_value());
    }

    #[test]
    fn fixed_mul_exact_when_no_frac_bits(a in -100i64..100, b in -100i64..100) {
        let q = QFormat::new(20, 0).unwrap();
        let x = Fixed::from_f64(a as f64, q);
        let y = Fixed::from_f64(b as f64, q);
        assert_eq!(x.mul(y).unwrap().to_f64(), (a * b) as f64);
    }

    #[test]
    fn auto_measure_never_overflows_counter(f in 1e3f64..1e11, phase in 0.0f64..1.0) {
        let c = GatedCounter::new(14, 3_200).unwrap(); // 100 µs @ 32 MHz
        let (est, counted) = auto_measure(Hertz(f), &c, Hertz(32e6), phase).unwrap();
        assert!(counted <= c.max_count());
        assert!(est.0 >= 0.0);
    }

    #[test]
    fn auto_measure_relative_error_bounded(f in 1e6f64..5e9, phase in 0.0f64..1.0) {
        // Worst case: the largest prescale ratio still keeps ≥ ~window/2 counts;
        // relative quantization ≤ ratio / (f·window) which auto-ranging keeps
        // below ~2/max_count.
        let c = GatedCounter::new(16, 32_000).unwrap(); // 1 ms @ 32 MHz
        let (est, _) = auto_measure(Hertz(f), &c, Hertz(32e6), phase).unwrap();
        assert!(((est.0 - f) / f).abs() < 2e-4, "f {f:.3e} est {est}");
    }

    #[test]
    fn prescaler_undo_inverts_output(f in 1.0f64..1e10, k in 0u32..16) {
        let p = Prescaler::new(k).unwrap();
        let rt = p.undo(p.output(Hertz(f)));
        assert!((rt.0 - f).abs() / f < 1e-12);
    }

    #[test]
    fn ledger_total_equals_sum_of_components(parts in ptsim_rng::check::vec_in(0.0f64..1e-9, 1..20)) {
        const NAMES: [&str; 5] = ["c0", "c1", "c2", "c3", "c4"];
        let mut l = EnergyLedger::new();
        for (i, p) in parts.iter().enumerate() {
            l.add(NAMES[i % 5], Joule(*p));
        }
        let sum: f64 = parts.iter().sum();
        assert!((l.total().0 - sum).abs() < 1e-18);
        assert!(l.len() <= 5);
    }
}
