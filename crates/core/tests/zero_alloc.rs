//! Enforces the hot-path allocation contract with a counting global
//! allocator: after the first conversion warms up the reused
//! [`Scratch`](ptsim_core::Scratch) workspace, the healthy analytic
//! conversion path performs **zero** heap allocations per die.
//!
//! Integration tests are separate binaries, so installing a counting
//! `#[global_allocator]` here observes every allocation the conversion
//! makes without affecting any other test.

use ptsim_circuit::energy::EnergyLedger;
use ptsim_core::health::Health;
use ptsim_core::pipeline::{gate, run_conversion_with, solve_gated_lanes, LaneBatch, LANES};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_core::Scratch;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Seconds, Volt, Watt};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_rng::Pcg64;
use ptsim_thermal::{step_transient_with, StackConfig, ThermalStack, TransientScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Tests are not built with `--cfg ptsim` pedantry: unsafe is confined to the
// trait forwarding below and the counter is a relaxed atomic (exactness per
// thread is all the single-threaded test needs).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn warm_conversion_path_is_allocation_free() {
    let mut die = DieSample::nominal();
    die.d_vtn_d2d = Volt(0.012);
    die.d_vtp_d2d = Volt(-0.008);
    let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
    let mut rng = Pcg64::seed_from_u64(0xa110c);
    sensor
        .calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();

    let temps = [Celsius(-10.0), Celsius(25.0), Celsius(60.0), Celsius(95.0)];
    let mut scratch = Scratch::new();

    // Warm-up: the first conversion is allowed to size the scratch buffers.
    let warm = run_conversion_with(
        &sensor,
        &SensorInputs::new(&die, DieSite::CENTER, temps[0]),
        &mut rng,
        &mut scratch,
    )
    .unwrap();
    assert!(warm.temperature.0.is_finite());

    // Measured region: every subsequent conversion must reuse the warmed
    // scratch without touching the heap.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0.0;
    for _ in 0..8 {
        for &t in &temps {
            let r = run_conversion_with(
                &sensor,
                &SensorInputs::new(&die, DieSite::CENTER, t),
                &mut rng,
                &mut scratch,
            )
            .unwrap();
            checksum += r.temperature.0;
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "warm conversions allocated {} times",
        after - before
    );
}

#[test]
fn warm_conversion_path_with_metrics_is_allocation_free() {
    // The observability layer must not break the hot-path contract: with a
    // metrics-enabled scratch, every counter/histogram/span update is an
    // indexed write into buffers registered at construction. Construction
    // and warm-up may allocate (registry vectors, the one-time PTSIM_TRACE
    // lookup); the measured region must not.
    let die = DieSample::nominal();
    let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
    let mut rng = Pcg64::seed_from_u64(0xa110d);
    sensor
        .calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();

    let temps = [Celsius(-10.0), Celsius(25.0), Celsius(60.0), Celsius(95.0)];
    let mut scratch = Scratch::with_metrics();

    let warm = run_conversion_with(
        &sensor,
        &SensorInputs::new(&die, DieSite::CENTER, temps[0]),
        &mut rng,
        &mut scratch,
    )
    .unwrap();
    assert!(warm.temperature.0.is_finite());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0.0;
    for _ in 0..8 {
        for &t in &temps {
            let r = run_conversion_with(
                &sensor,
                &SensorInputs::new(&die, DieSite::CENTER, t),
                &mut rng,
                &mut scratch,
            )
            .unwrap();
            checksum += r.temperature.0;
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "instrumented warm conversions allocated {} times",
        after - before
    );
    // And the metrics actually observed the measured conversions.
    #[cfg(feature = "obs")]
    {
        let snap = scratch.metrics().expect("metrics attached").snapshot();
        assert_eq!(snap.counter("pipeline.conversions"), Some(33));
    }
}

#[test]
fn warm_transient_step_is_allocation_free() {
    // The 2 ms DTM control-loop tick: retune per-cell power in place
    // (`power_mut` + `set_cell`), then advance the 16×16×4 stack with the
    // caller-held scratch. The first step sizes the stencil and derivative
    // buffers; every warm step after that must not touch the heap.
    let mut stack = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
    stack
        .power_mut(0)
        .unwrap()
        .add_hotspot(0.5, 0.5, 0.15, Watt(2.0));
    let mut scratch = TransientScratch::new();
    let dt = Seconds(0.002);

    // Warm-up step.
    assert!(step_transient_with(&mut stack, dt, &mut scratch) >= 1);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..16usize {
        // A moving hotspot, written straight into the stored map.
        let map = stack.power_mut(0).unwrap();
        map.set_cell(i % 16, (3 * i) % 16, Watt(4.0));
        map.set_cell((i + 7) % 16, i % 16, Watt(0.5));
        step_transient_with(&mut stack, dt, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    let probe = stack.max_temperature(0).unwrap();
    assert!(probe.0.is_finite() && probe.0 > 25.0);
    assert_eq!(
        after - before,
        0,
        "warm transient steps allocated {} times",
        after - before
    );
}

#[test]
fn warm_lane_kernel_is_allocation_free() {
    // The SoA batch kernel carries all solver state in fixed-size stack
    // arrays: once the shared scratch is warm, filling a LaneBatch and
    // solving all eight lanes jointly must not touch the heap.
    let die = DieSample::nominal();
    let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
    let mut rng = Pcg64::seed_from_u64(0xa110e);
    let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    sensor.calibrate(&boot, &mut rng).unwrap();
    let cal = *sensor.calibration().expect("calibrated above");

    // Gate eight conversions up front (gating draws RNG and may size
    // buffers); the measured region is pure lane work.
    let temps = [-10.0, 5.0, 20.0, 35.0, 50.0, 65.0, 80.0, 95.0];
    let gateds: Vec<_> = temps
        .iter()
        .map(|&t| {
            let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t));
            let mut ledger = EnergyLedger::new();
            let mut health = Health::nominal();
            gate::gate_conversion(&sensor, &inputs, &mut rng, &mut ledger, &mut health).unwrap()
        })
        .collect();

    let mut batch = LaneBatch::new();
    let mut scratch = Scratch::new();
    let run = |batch: &mut LaneBatch, scratch: &mut Scratch| -> f64 {
        batch.clear();
        for gated in &gateds {
            assert!(LaneBatch::accepts(&sensor, gated));
            batch.push(&cal, gated);
        }
        let mut healths: [Health; LANES] = core::array::from_fn(|_| Health::nominal());
        let mut out: [Option<_>; LANES] = core::array::from_fn(|_| None);
        solve_gated_lanes(&sensor, batch, &mut healths, scratch, &mut out);
        out.iter()
            .flatten()
            .map(|r| r.as_ref().unwrap().temperature)
            .sum()
    };

    // Warm-up sizes the Newton scratch; the measured solves reuse it.
    let warm = run(&mut batch, &mut scratch);
    assert!(warm.is_finite());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0.0;
    for _ in 0..8 {
        checksum += run(&mut batch, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "warm lane solves allocated {} times",
        after - before
    );
}
