#![cfg(feature = "obs")]

//! Observability-layer contract tests:
//!
//! * metrics **read, never perturb** — a conversion with a metrics-enabled
//!   scratch is bit-identical to one without;
//! * counters reflect exactly what the pipeline did;
//! * merging per-worker metrics from a parallel run reproduces the
//!   sequential run's deterministic subset (counters and the energy
//!   histogram; span timings are wall-clock and excluded).

use ptsim_core::pipeline::{run_calibration_with, run_conversion_with, BatchPlan};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_core::{PipelineMetrics, Scratch};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_mc::driver::{run_parallel_metered, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_rng::Pcg64;

fn sensor() -> PtSensor {
    PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap()
}

#[test]
fn metrics_never_perturb_the_readings() {
    let die = DieSample::nominal();
    let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    let temps = [Celsius(-20.0), Celsius(25.0), Celsius(85.0), Celsius(110.0)];

    let run = |scratch: &mut Scratch| {
        let mut s = sensor();
        let mut rng = Pcg64::seed_from_u64(0x0b5e);
        run_calibration_with(&mut s, &boot, &mut rng, scratch).unwrap();
        temps
            .iter()
            .map(|&t| {
                run_conversion_with(
                    &s,
                    &SensorInputs::new(&die, DieSite::CENTER, t),
                    &mut rng,
                    scratch,
                )
                .unwrap()
            })
            .collect::<Vec<_>>()
    };

    let plain = run(&mut Scratch::new());
    let mut metered = Scratch::with_metrics();
    let instrumented = run(&mut metered);
    assert_eq!(plain, instrumented);

    let snap = metered.metrics().expect("metrics attached").snapshot();
    assert_eq!(
        snap.counter("pipeline.conversions"),
        Some(temps.len() as u64)
    );
}

#[test]
fn counters_reflect_the_pipeline_work_exactly() {
    let die = DieSample::nominal();
    let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    let spec = SensorSpec::default_65nm();
    let replicas = spec.hardening.replicas as u64;
    let n_reads = 10u64;

    let mut s = sensor();
    let mut rng = Pcg64::seed_from_u64(0x0b5f);
    let mut scratch = Scratch::with_metrics();
    run_calibration_with(&mut s, &boot, &mut rng, &mut scratch).unwrap();
    for i in 0..n_reads {
        let t = Celsius(-20.0 + 12.0 * i as f64);
        run_conversion_with(
            &s,
            &SensorInputs::new(&die, DieSite::CENTER, t),
            &mut rng,
            &mut scratch,
        )
        .unwrap();
    }

    let snap = scratch.metrics().unwrap().snapshot();
    assert_eq!(snap.counter("pipeline.calibrations"), Some(1));
    assert_eq!(snap.counter("pipeline.conversions"), Some(n_reads));
    assert_eq!(snap.counter("pipeline.errors"), Some(0));
    // Calibration gates 5 channels (the 4-measurement plan + the TSRO
    // reference); each conversion gates 3. No retries on a nominal die.
    assert_eq!(
        snap.counter("acquire.replicas"),
        Some((5 + 3 * n_reads) * replicas)
    );
    assert_eq!(snap.counter("gate.retries"), Some(0));
    assert_eq!(snap.counter("gate.channels_lost"), Some(0));
    assert_eq!(snap.counter("solve.degraded_temp_only"), Some(0));
    // One health tally per completed conversion/calibration, all nominal.
    assert_eq!(snap.counter("health.nominal"), Some(n_reads + 1));
    assert_eq!(snap.counter("health.recovered"), Some(0));
    assert_eq!(snap.counter("health.degraded"), Some(0));
    // Newton work was recorded and every conversion's energy was observed.
    assert!(snap.counter("solve.newton_iterations").unwrap() >= n_reads);
    assert_eq!(
        snap.histogram("energy.conversion_pj").unwrap().total,
        n_reads
    );
    assert_eq!(snap.histogram("span.conversion_us").unwrap().total, n_reads);
}

#[test]
fn merged_worker_metrics_match_the_sequential_run() {
    // The deterministic subset of the snapshot — counters and the energy
    // histogram — must be independent of how dies were scheduled across
    // workers. Span histograms record wall-clock time and are excluded.
    let campaign = |threads: usize| {
        let tech = Technology::n65();
        let model = VariationModel::new(&tech);
        let plan = BatchPlan::new(tech, SensorSpec::default_65nm())
            .unwrap()
            .read_at(&[40.0, 85.0]);
        let mut cfg = McConfig::new(12, 0xcafe);
        cfg.threads = threads;
        let (_, reports) = run_parallel_metered(
            &cfg,
            || (plan.sensor(), Scratch::with_metrics()),
            |(s, sc), i, rng| {
                let die = model.sample_die_with_id(rng, i);
                s.clear_faults();
                plan.convert_with_scratch(s, &die, rng, sc).unwrap();
            },
        );
        let mut total = PipelineMetrics::new();
        for mut r in reports {
            if let Some(m) = r.ctx.1.take_metrics() {
                total.merge(&m);
            }
        }
        total.snapshot().filtered(|name| !name.starts_with("span."))
    };

    let sequential = campaign(1);
    let parallel = campaign(4);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.counter("pipeline.conversions"), Some(24));
    assert_eq!(sequential.counter("pipeline.calibrations"), Some(12));
}

#[test]
fn population_metrics_are_thread_invariant_under_the_lane_kernel() {
    // Same invariant as above, but through the struct-of-arrays population
    // path: run_population_with_metrics chunks dies LANES at a time, and
    // the merged deterministic subset must not depend on how those chunks
    // were scheduled across workers. 21 dies forces a masked tail chunk.
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let plan = BatchPlan::new(tech, SensorSpec::default_65nm())
        .unwrap()
        .read_at(&[40.0, 85.0]);

    let campaign = |threads: usize| {
        let mut cfg = McConfig::new(21, 0xcafe);
        cfg.threads = threads;
        let (results, metrics) = plan.run_population_with_metrics(&cfg, &model);
        let snap = metrics
            .snapshot()
            .filtered(|name| !name.starts_with("span."));
        (results, snap)
    };

    let (seq_results, sequential) = campaign(1);
    let (par_results, parallel) = campaign(4);
    assert_eq!(seq_results, par_results);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.counter("pipeline.conversions"), Some(42));
    assert_eq!(sequential.counter("pipeline.calibrations"), Some(21));

    // Metering reads, never perturbs: the metered lane run is bit-identical
    // to the unmetered one, which is itself gated against the scalar oracle.
    let mut cfg = McConfig::new(21, 0xcafe);
    cfg.threads = 4;
    assert_eq!(seq_results, plan.run_population(&cfg, &model));
    assert_eq!(seq_results, plan.run_population_scalar(&cfg, &model));
}
