//! End-to-end behavior of the full sensor through its public API:
//! calibration accuracy, conversion accuracy/energy, and the hardened
//! fault-detection/degradation chain. Stage-level unit tests live next to
//! the pipeline modules; these exercise the composed datapath exactly like
//! an application would.

use ptsim_core::error::SensorError;
use ptsim_core::health::{HealthEvent, HealthStatus};
use ptsim_core::sensor::{HardeningSpec, PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Hertz, Volt};
use ptsim_faults::{Channel, Fault, FaultPlan, ReplicaSel};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_mc::model::VariationModel;
use ptsim_rng::Pcg64;

fn sensor() -> PtSensor {
    PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap()
}

fn calibrated_on(die: &DieSample, seed: u64) -> PtSensor {
    let mut s = sensor();
    let inputs = SensorInputs::new(die, DieSite::CENTER, Celsius(25.0));
    let mut rng = Pcg64::seed_from_u64(seed);
    s.calibrate(&inputs, &mut rng).unwrap();
    s
}

#[test]
fn read_before_calibration_fails() {
    let s = sensor();
    let die = DieSample::nominal();
    let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    let mut rng = Pcg64::seed_from_u64(0);
    assert_eq!(
        s.read(&inputs, &mut rng).unwrap_err(),
        SensorError::NotCalibrated
    );
}

#[test]
fn nominal_die_calibrates_to_near_zero_shifts() {
    let die = DieSample::nominal();
    let s = calibrated_on(&die, 1);
    let cal = s.calibration().unwrap();
    assert!(
        cal.d_vtn().millivolts().abs() < 1.0,
        "d_vtn {}",
        cal.d_vtn()
    );
    assert!(
        cal.d_vtp().millivolts().abs() < 1.0,
        "d_vtp {}",
        cal.d_vtp()
    );
    assert!((cal.mu_n() - 1.0).abs() < 0.01);
    assert!((cal.mu_p() - 1.0).abs() < 0.01);
}

#[test]
fn calibration_recovers_known_d2d_shift() {
    let mut die = DieSample::nominal();
    die.d_vtn_d2d = Volt(0.025);
    die.d_vtp_d2d = Volt(-0.015);
    die.mu_n_d2d = 1.04;
    die.mu_p_d2d = 0.97;
    let s = calibrated_on(&die, 2);
    let cal = s.calibration().unwrap();
    assert!(
        (cal.d_vtn().0 - 0.025).abs() < 2e-3,
        "d_vtn {} vs 25 mV",
        cal.d_vtn()
    );
    assert!(
        (cal.d_vtp().0 + 0.015).abs() < 2e-3,
        "d_vtp {} vs -15 mV",
        cal.d_vtp()
    );
    assert!((cal.mu_n() - 1.04).abs() < 0.02, "mu_n {}", cal.mu_n());
    assert!((cal.mu_p() - 0.97).abs() < 0.02, "mu_p {}", cal.mu_p());
}

#[test]
fn temperature_readback_accurate_across_range() {
    let die = DieSample::nominal();
    let s = calibrated_on(&die, 3);
    let mut rng = Pcg64::seed_from_u64(33);
    for t in [-20.0, 0.0, 25.0, 50.0, 75.0, 100.0] {
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t));
        let r = s.read(&inputs, &mut rng).unwrap();
        let err = r.temperature.0 - t;
        assert!(
            err.abs() < 1.5,
            "at {t} °C error {err:.3} °C exceeds ±1.5 °C"
        );
        assert!(
            r.health.is_nominal(),
            "healthy read flagged: {:?}",
            r.health
        );
    }
}

#[test]
fn temperature_accuracy_on_varied_die() {
    // A full Monte-Carlo die (D2D + WID) must still read within spec.
    let model = VariationModel::new(&Technology::n65());
    let mut rng = Pcg64::seed_from_u64(7);
    let die = model.sample_die(&mut rng);
    let s = calibrated_on(&die, 8);
    for t in [0.0, 50.0, 100.0] {
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t));
        let r = s.read(&inputs, &mut rng).unwrap();
        let err = r.temperature.0 - t;
        assert!(err.abs() < 2.0, "at {t} °C error {err:.3} °C");
    }
}

#[test]
fn vt_tracking_follows_stress_shift() {
    let die = DieSample::nominal();
    let s = calibrated_on(&die, 4);
    let mut rng = Pcg64::seed_from_u64(44);
    let base = SensorInputs::new(&die, DieSite::CENTER, Celsius(60.0));
    let stressed = base.with_stress(Volt(0.004), Volt(-0.002));
    let r0 = s.read(&base, &mut rng).unwrap();
    let r1 = s.read(&stressed, &mut rng).unwrap();
    let dn = (r1.d_vtn - r0.d_vtn).millivolts();
    let dp = (r1.d_vtp - r0.d_vtp).millivolts();
    assert!((dn - 4.0).abs() < 1.0, "tracked ΔVtn {dn:.2} mV vs 4 mV");
    assert!((dp + 2.0).abs() < 1.0, "tracked ΔVtp {dp:.2} mV vs -2 mV");
}

#[test]
fn reading_reports_energy_breakdown() {
    let die = DieSample::nominal();
    let s = calibrated_on(&die, 5);
    let mut rng = Pcg64::seed_from_u64(55);
    let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    let r = s.read(&inputs, &mut rng).unwrap();
    for comp in [
        "TSRO",
        "PSRO-N",
        "PSRO-P",
        "counters",
        "controller",
        "solver",
    ] {
        assert!(
            r.energy.component(comp).0 > 0.0,
            "missing energy component {comp}"
        );
    }
    let total_pj = r.energy_total().picojoules();
    assert!(
        total_pj > 50.0 && total_pj < 2000.0,
        "conversion energy {total_pj:.1} pJ implausible"
    );
}

#[test]
fn nominal_conversion_energy_matches_paper() {
    // The abstract reports 367.5 pJ per conversion; the reference spec is
    // tuned to land there at the nominal corner, 25 °C.
    let die = DieSample::nominal();
    let s = calibrated_on(&die, 42);
    let mut rng = Pcg64::seed_from_u64(42);
    let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    let r = s.read(&inputs, &mut rng).unwrap();
    let pj = r.energy_total().picojoules();
    assert!(
        (pj - 367.5).abs() < 8.0,
        "conversion energy {pj:.1} pJ vs paper 367.5 pJ"
    );
}

#[test]
fn out_of_range_temperature_rejected() {
    let die = DieSample::nominal();
    let mut spec = SensorSpec::default_65nm();
    spec.temp_range = (Celsius(0.0), Celsius(50.0));
    let mut s = PtSensor::new(Technology::n65(), spec).unwrap();
    let mut rng = Pcg64::seed_from_u64(6);
    s.calibrate(
        &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
        &mut rng,
    )
    .unwrap();
    let hot = SensorInputs::new(&die, DieSite::CENTER, Celsius(120.0));
    assert!(matches!(
        s.read(&hot, &mut rng),
        Err(SensorError::TemperatureOutOfRange { .. })
    ));
}

#[test]
fn set_calibration_replays_stored_state() {
    let die = DieSample::nominal();
    let s1 = calibrated_on(&die, 9);
    let cal = *s1.calibration().unwrap();
    let mut s2 = sensor();
    s2.set_calibration(cal);
    let mut rng = Pcg64::seed_from_u64(99);
    let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(40.0));
    let r = s2.read(&inputs, &mut rng).unwrap();
    assert!((r.temperature.0 - 40.0).abs() < 1.5);
}

#[test]
fn boot_temperature_error_degrades_accuracy() {
    // Calibrating while the die is actually 10 °C hotter than assumed
    // biases subsequent readings.
    let die = DieSample::nominal();
    let mut good = sensor();
    let mut bad = sensor();
    let mut rng = Pcg64::seed_from_u64(10);
    good.calibrate(
        &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
        &mut rng,
    )
    .unwrap();
    bad.calibrate(
        &SensorInputs::new(&die, DieSite::CENTER, Celsius(35.0)),
        &mut rng,
    )
    .unwrap();
    let probe = SensorInputs::new(&die, DieSite::CENTER, Celsius(80.0));
    let e_good = (good.read(&probe, &mut rng).unwrap().temperature.0 - 80.0).abs();
    let e_bad = (bad.read(&probe, &mut rng).unwrap().temperature.0 - 80.0).abs();
    assert!(e_bad > e_good, "boot error must hurt: {e_bad} vs {e_good}");
}

// --- fault-injection / graceful-degradation behavior ---

fn faulted_inputs(die: &DieSample, t: f64) -> SensorInputs<'_> {
    SensorInputs::new(die, DieSite::CENTER, Celsius(t))
}

#[test]
fn dead_tsro_is_a_detected_channel_failure() {
    let die = DieSample::nominal();
    let mut s = calibrated_on(&die, 20);
    s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
        channel: Channel::Tsro,
        replica: ReplicaSel::All,
    }));
    let mut rng = Pcg64::seed_from_u64(20);
    assert!(matches!(
        s.read(&faulted_inputs(&die, 85.0), &mut rng),
        Err(SensorError::ChannelFailed { channel: "TSRO" })
    ));
}

#[test]
fn dead_psro_degrades_to_accurate_temperature_only() {
    let die = DieSample::nominal();
    let mut s = calibrated_on(&die, 21);
    s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
        channel: Channel::PsroN,
        replica: ReplicaSel::All,
    }));
    let mut rng = Pcg64::seed_from_u64(21);
    let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
    assert_eq!(r.health.status(), HealthStatus::Degraded);
    assert!(r
        .health
        .any(|e| matches!(e, HealthEvent::DegradedTemperatureOnly)));
    assert!(r
        .health
        .any(|e| matches!(e, HealthEvent::ChannelLost { channel: "PSRO-N" })));
    assert!(
        (r.temperature.0 - 85.0).abs() < 3.0,
        "degraded temp {} vs 85 °C",
        r.temperature
    );
    // Threshold outputs frozen at calibration; lost channel reads 0 Hz.
    assert_eq!(r.d_vtn, s.calibration().unwrap().d_vtn());
    assert_eq!(r.raw_frequencies.1, Hertz(0.0));
}

#[test]
fn calib_register_seu_is_caught_by_parity_and_scrubbed() {
    let die = DieSample::nominal();
    let mut s = calibrated_on(&die, 22);
    s.inject_faults(FaultPlan::single(Fault::CalibRegisterSeu {
        register: 0,
        bit: 14,
    }));
    let mut rng = Pcg64::seed_from_u64(22);
    let err = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap_err();
    assert_eq!(
        err,
        SensorError::CalibrationCorrupted { registers: 0b00001 }
    );
    // Scrub recovers by recalibrating; the record says why.
    let outcome = s
        .parity_scrub(&faulted_inputs(&die, 25.0), &mut rng)
        .unwrap()
        .expect("scrub must trigger");
    assert!(outcome
        .health
        .any(|e| matches!(e, HealthEvent::ParityScrubbed { registers: 0b00001 })));
    let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
    assert!((r.temperature.0 - 85.0).abs() < 1.5);
    // A second scrub is a no-op.
    assert!(s
        .parity_scrub(&faulted_inputs(&die, 25.0), &mut rng)
        .unwrap()
        .is_none());
}

#[test]
fn stuck_counter_bit_on_one_replica_is_outvoted() {
    let die = DieSample::nominal();
    let mut spec = SensorSpec::default_65nm();
    spec.hardening = HardeningSpec::redundant();
    let mut s = PtSensor::new(Technology::n65(), spec).unwrap();
    let mut rng = Pcg64::seed_from_u64(23);
    s.calibrate(&faulted_inputs(&die, 25.0), &mut rng).unwrap();
    s.inject_faults(FaultPlan::single(Fault::CounterStuckBit {
        replica: ReplicaSel::Index(0),
        bit: 12,
        stuck_high: true,
    }));
    let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
    assert!(r.health.flagged(), "stuck bit must be flagged");
    assert!(
        (r.temperature.0 - 85.0).abs() < 2.0,
        "voted temp {} vs 85 °C",
        r.temperature
    );
}

#[test]
fn redundant_healthy_sensor_is_not_falsely_flagged() {
    let die = DieSample::nominal();
    let mut spec = SensorSpec::default_65nm();
    spec.hardening = HardeningSpec::redundant();
    let mut s = PtSensor::new(Technology::n65(), spec).unwrap();
    let mut rng = Pcg64::seed_from_u64(24);
    let outcome = s.calibrate(&faulted_inputs(&die, 25.0), &mut rng).unwrap();
    assert!(outcome.health.is_nominal(), "{:?}", outcome.health);
    for t in [0.0, 50.0, 100.0] {
        let r = s.read(&faulted_inputs(&die, t), &mut rng).unwrap();
        assert!(r.health.is_nominal(), "at {t} °C: {:?}", r.health);
    }
}

#[test]
fn clear_faults_restores_nominal_operation() {
    let die = DieSample::nominal();
    let mut s = calibrated_on(&die, 25);
    s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
        channel: Channel::PsroN,
        replica: ReplicaSel::All,
    }));
    assert!(!s.faults().is_empty());
    s.clear_faults();
    assert!(s.faults().is_empty());
    let mut rng = Pcg64::seed_from_u64(25);
    let r = s.read(&faulted_inputs(&die, 60.0), &mut rng).unwrap();
    assert!(r.health.is_nominal());
    assert!((r.temperature.0 - 60.0).abs() < 1.5);
}

#[test]
fn retry_energy_is_charged_when_a_channel_recovers() {
    // A dead PSRO-N reads 0 Hz — always below the plausibility band — so
    // the controller retries with the widened window before declaring the
    // channel lost. The ledger must carry that overhead.
    let die = DieSample::nominal();
    let mut s = calibrated_on(&die, 26);
    s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
        channel: Channel::PsroN,
        replica: ReplicaSel::All,
    }));
    let mut rng = Pcg64::seed_from_u64(26);
    let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
    assert!(r.health.any(|e| matches!(
        e,
        HealthEvent::RetriedWindow {
            channel: "PSRO-N",
            ..
        }
    )));
    assert!(
        r.energy.component("retry").0 > 0.0,
        "retry energy must be charged"
    );
    assert_eq!(r.health.status(), HealthStatus::Degraded);
}
