//! SoA-vs-scalar equivalence gates for the lane kernel:
//!
//! * randomized populations through `BatchPlan::run_population` are
//!   bit-identical to the retained scalar oracle for **every** tail
//!   length mod [`LANES`] (0 through 2×LANES dies);
//! * `convert_batch` edge sizes (0, 1, 7, 8, 9 inputs) match a scalar
//!   `convert` loop bit for bit;
//! * a die forced into Newton divergence in lane *k* falls back to the
//!   scalar escalation ladder — same `Reading`, same `SolverRetuned`/
//!   `RomFallback` health events — and never perturbs neighboring lanes.

use ptsim_core::health::HealthEvent;
use ptsim_core::pipeline::{read_group, BatchPlan, LANES};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_core::Conversion;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};
use ptsim_faults::{Channel, Fault, FaultPlan, ReplicaSel};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_mc::driver::McConfig;
use ptsim_mc::model::VariationModel;
use ptsim_rng::{forall, Pcg64, RngCore};

fn plan() -> BatchPlan {
    BatchPlan::new(Technology::n65(), SensorSpec::default_65nm())
        .unwrap()
        .read_at(&[10.0, 85.0])
}

/// A fault plan that makes the joint 3×3 conversion solve diverge under
/// the default Newton tuning (the measured PSROs contradict each other by
/// almost two decades) while both channels still pass plausibility gating:
/// the solver escalates through `SolverRetuned` to `RomFallback`.
fn diverging_faults() -> FaultPlan {
    FaultPlan::new()
        .with(Fault::SlowRo {
            channel: Channel::PsroN,
            replica: ReplicaSel::All,
            factor: 0.1,
        })
        .with(Fault::SlowRo {
            channel: Channel::PsroP,
            replica: ReplicaSel::All,
            factor: 8.0,
        })
}

#[test]
fn edge_populations_match_the_scalar_oracle() {
    // 0 = empty, 1 = lone masked lane, 7/9 = tails straddling a chunk
    // boundary, 8 = exactly one full chunk.
    let p = plan();
    let model = VariationModel::new(&Technology::n65());
    for n in [0usize, 1, 7, 8, 9] {
        let cfg = McConfig::new(n, 0x1a9e ^ n as u64);
        let lane = p.run_population(&cfg, &model);
        let scalar = p.run_population_scalar(&cfg, &model);
        assert_eq!(lane.len(), n);
        assert_eq!(lane, scalar, "population of {n} diverged from the oracle");
        for r in &lane {
            r.as_ref().expect("nominal-variation dies convert");
        }
    }
}

#[test]
fn convert_batch_edge_sizes_match_a_scalar_loop() {
    let die = DieSample::nominal();
    let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    for n in [0usize, 1, 7, 8, 9] {
        let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let mut rng = Pcg64::seed_from_u64(0xba7c ^ n as u64);
        sensor.prepare(&boot, &mut rng).unwrap();
        let inputs: Vec<SensorInputs<'_>> = (0..n)
            .map(|i| SensorInputs::new(&die, DieSite::CENTER, Celsius(-10.0 + 14.0 * i as f64)))
            .collect();

        let mut rng_loop = Pcg64::seed_from_u64(0x5eed ^ n as u64);
        let looped: Result<Vec<_>, _> = inputs
            .iter()
            .map(|i| sensor.convert(i, &mut rng_loop))
            .collect();
        let mut rng_batch = Pcg64::seed_from_u64(0x5eed ^ n as u64);
        let batched = sensor.convert_batch(&inputs, &mut rng_batch);

        assert_eq!(looped.unwrap(), batched.unwrap(), "batch of {n} diverged");
        assert_eq!(rng_loop.next_u64(), rng_batch.next_u64());
    }
}

forall! {
    #![cases = 8]

    #[test]
    fn every_tail_length_is_bit_identical_to_the_oracle(
        tail in 0u64..8,
        chunks in 0u64..2,
        seed in 0u64..1_000_000,
    ) {
        let n = (chunks as usize) * LANES + tail as usize;
        let p = plan();
        let model = VariationModel::new(&Technology::n65());
        let cfg = McConfig::new(n, seed);
        assert_eq!(
            p.run_population(&cfg, &model),
            p.run_population_scalar(&cfg, &model),
            "population of {n} (seed {seed:#x}) diverged from the oracle"
        );
    }

    #[test]
    fn divergence_in_lane_k_falls_back_without_perturbing_neighbors(
        k in 0u64..8,
        seed in 0u64..1_000_000,
        dvt in -0.015f64..0.015,
    ) {
        let k = k as usize;
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(dvt);
        die.d_vtp_d2d = Volt(-dvt);
        let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));

        // One calibrated sensor per lane; lane k carries the fault plan
        // that defeats the default Newton tuning.
        let build = |with_fault: bool| {
            let mut sensors = Vec::with_capacity(LANES);
            let mut rngs = Vec::with_capacity(LANES);
            for lane in 0..LANES {
                let mut s =
                    PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
                let mut rng = Pcg64::seed_from_u64(seed ^ (0x1a2e << 8) ^ lane as u64);
                s.prepare(&boot, &mut rng).unwrap();
                if with_fault && lane == k {
                    s.inject_faults(diverging_faults());
                }
                sensors.push(s);
                rngs.push(rng);
            }
            (sensors, rngs)
        };

        // Lane path: one read_group over all eight sensors.
        let (sensors, mut rngs) = build(true);
        let inputs: Vec<SensorInputs<'_>> = (0..LANES)
            .map(|_| SensorInputs::new(&die, DieSite::CENTER, Celsius(85.0)))
            .collect();
        let refs: Vec<&PtSensor> = sensors.iter().collect();
        let mut rng_refs: Vec<&mut Pcg64> = rngs.iter_mut().collect();
        let grouped = read_group(&refs, &inputs, &mut rng_refs);

        // Scalar oracle: identically prepared sensors, one read each.
        let (oracle_sensors, mut oracle_rngs) = build(true);
        for lane in 0..LANES {
            let expected = oracle_sensors[lane]
                .read(&inputs[lane], &mut oracle_rngs[lane])
                .unwrap();
            let got = grouped[lane].as_ref().unwrap();
            assert_eq!(got, &expected, "lane {lane} diverged from the oracle");
        }

        // The faulted lane really took the escalation ladder…
        let events = grouped[k].as_ref().unwrap().health.events().to_vec();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, HealthEvent::SolverRetuned { .. })),
            "lane {k} never retuned: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, HealthEvent::RomFallback { .. })),
            "lane {k} never hit the ROM fallback: {events:?}"
        );

        // …and its neighbors are bit-identical to a group with no faulted
        // lane at all (per-lane RNG streams are independent, so the fault
        // must not leak across lanes).
        let (clean_sensors, mut clean_rngs) = build(false);
        let clean_refs: Vec<&PtSensor> = clean_sensors.iter().collect();
        let mut clean_rng_refs: Vec<&mut Pcg64> = clean_rngs.iter_mut().collect();
        let clean = read_group(&clean_refs, &inputs, &mut clean_rng_refs);
        for lane in (0..LANES).filter(|&l| l != k) {
            assert_eq!(
                grouped[lane].as_ref().unwrap(),
                clean[lane].as_ref().unwrap(),
                "faulted lane {k} perturbed neighbor {lane}"
            );
        }
    }
}
