//! Property-based tests of the sensor-core invariants.

use ptsim_circuit::fixed::QFormat;
use ptsim_core::bank::{BankSpec, RoBank, RoClass};
use ptsim_core::calib::Calibration;
use ptsim_core::newton::{newton_solve, solve_linear, NewtonOptions};
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};
use ptsim_rng::forall;

forall! {
    #[test]
    fn linear_solver_reconstructs_random_solutions(
        a11 in 0.5f64..5.0, a12 in -2.0f64..2.0,
        a21 in -2.0f64..2.0, a22 in 0.5f64..5.0,
        x1 in -10.0f64..10.0, x2 in -10.0f64..10.0,
    ) {
        // Diagonally dominant 2x2 — always solvable.
        let a = [a11 + 3.0, a12, a21, a22 + 3.0];
        let b = [
            a[0] * x1 + a[1] * x2,
            a[2] * x1 + a[3] * x2,
        ];
        let mut aa = a.to_vec();
        let mut bb = b.to_vec();
        solve_linear(&mut aa, &mut bb, 2, "prop").unwrap();
        assert!((bb[0] - x1).abs() < 1e-8);
        assert!((bb[1] - x2).abs() < 1e-8);
    }

    #[test]
    fn newton_finds_cubic_roots(target in 0.1f64..50.0) {
        let mut x = [1.0];
        newton_solve(
            &mut x,
            |v| vec![v[0].powi(3) - target],
            &[1e-7],
            &[10.0],
            &NewtonOptions { max_iterations: 200, ..NewtonOptions::default() },
            "cubic",
        )
        .unwrap();
        assert!((x[0] - target.cbrt()).abs() < 1e-6);
    }

    #[test]
    fn calibration_storage_error_bounded_by_lsb(
        dvtn in -0.06f64..0.06,
        dvtp in -0.06f64..0.06,
        mu_n in 0.8f64..1.2,
        mu_p in 0.8f64..1.2,
        scale in -0.2f64..0.2,
    ) {
        let c = Calibration::store(
            Volt(dvtn), Volt(dvtp), mu_n, mu_p, scale, Celsius(25.0), QFormat::Q16_16,
        );
        let lsb = QFormat::Q16_16.resolution();
        assert!((c.d_vtn().0 - dvtn).abs() <= lsb);
        assert!((c.d_vtp().0 - dvtp).abs() <= lsb);
        assert!((c.mu_n() - mu_n).abs() <= lsb);
        assert!((c.mu_p() - mu_p).abs() <= lsb);
        assert!((c.ln_tsro_scale() - scale).abs() <= lsb);
    }

    #[test]
    fn ro_frequencies_decrease_in_own_vt(
        shift in 0.002f64..0.05,
        t in -10.0f64..100.0,
    ) {
        let tech = Technology::n65();
        let bank = RoBank::new(&tech, BankSpec::default_65nm()).unwrap();
        let vdd = bank.spec().vdd_low;
        let base = CmosEnv::at(Celsius(t));
        let mut n_slow = base;
        n_slow.d_vtn = Volt(shift);
        let mut p_slow = base;
        p_slow.d_vtp = Volt(shift);
        assert!(
            bank.frequency(&tech, RoClass::PsroN, vdd, &n_slow).0
                < bank.frequency(&tech, RoClass::PsroN, vdd, &base).0
        );
        assert!(
            bank.frequency(&tech, RoClass::PsroP, vdd, &p_slow).0
                < bank.frequency(&tech, RoClass::PsroP, vdd, &base).0
        );
    }

    #[test]
    fn mobility_shifts_all_ro_frequencies_up(
        mu in 1.01f64..1.2,
        t in 0.0f64..100.0,
    ) {
        let tech = Technology::n65();
        let bank = RoBank::new(&tech, BankSpec::default_65nm()).unwrap();
        let base = CmosEnv::at(Celsius(t));
        let fast = CmosEnv { mu_n: mu, mu_p: mu, ..base };
        for (class, vdd) in [
            (RoClass::PsroN, bank.spec().vdd_low),
            (RoClass::PsroP, bank.spec().vdd_low),
            (RoClass::Tsro, bank.spec().vdd_tsro),
        ] {
            assert!(
                bank.frequency(&tech, class, vdd, &fast).0
                    > bank.frequency(&tech, class, vdd, &base).0
            );
        }
    }
}

forall! {
    #![cases = 10]

    // End-to-end: temperature readback stays in band for arbitrary
    // operating points on arbitrary (bounded) dies.
    #[test]
    fn temperature_readback_in_band(
        dvt_n in -0.03f64..0.03,
        dvt_p in -0.03f64..0.03,
        t in -15.0f64..105.0,
        seed in 0u64..100,
    ) {
        use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
        use ptsim_mc::die::{DieSample, DieSite};

        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(dvt_n);
        die.d_vtp_d2d = Volt(dvt_p);
        let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let mut rng = ptsim_rng::Pcg64::seed_from_u64(seed);
        sensor
            .calibrate(&SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)), &mut rng)
            .unwrap();
        let r = sensor
            .read(&SensorInputs::new(&die, DieSite::CENTER, Celsius(t)), &mut rng)
            .unwrap();
        assert!(
            (r.temperature.0 - t).abs() < 1.5,
            "err {:.3} at {t} °C", r.temperature.0 - t
        );
    }
}
