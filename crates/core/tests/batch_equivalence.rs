//! Property test: the batched conversion path ([`Conversion::convert_batch`],
//! which reuses one `Scratch` workspace across the batch) is **bit-identical**
//! to a hand-written [`Conversion::convert`] loop — same `Reading`s, same
//! `Health` records, same RNG stream consumption — across random dies,
//! temperatures, and fault plans. This is the workspace's enforcement of the
//! hot-path contract: caching is exact memoization, never approximation.

use ptsim_core::pipeline::Conversion;
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};
use ptsim_faults::{Channel, Fault, FaultPlan, ReplicaSel};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_rng::{forall, Pcg64, RngCore};

/// A small catalog of fault plans spanning the interesting code paths:
/// healthy, frequency-domain faults, count-domain faults, shared-supply and
/// reference faults, and a dead PSRO bank (degraded temperature-only output).
fn fault_plan(kind: u64, a: f64, b: f64) -> FaultPlan {
    match kind {
        0 => FaultPlan::new(),
        1 => FaultPlan::single(Fault::SlowRo {
            channel: Channel::PsroN,
            replica: ReplicaSel::All,
            factor: 0.9 + 0.2 * a,
        }),
        2 => FaultPlan::single(Fault::RoJitter {
            channel: Channel::Tsro,
            replica: ReplicaSel::All,
            sigma_rel: 0.002 * a,
        }),
        3 => FaultPlan::single(Fault::CountSlip {
            replica: ReplicaSel::All,
            max_slip: 1 + (a * 3.0) as u64,
        }),
        4 => FaultPlan::single(Fault::SupplyDroop {
            depth: 0.05 * a,
            probability: b,
        }),
        5 => FaultPlan::new()
            .with(Fault::RefClockDrift {
                rel: 0.01 * (a - 0.5),
            })
            .with(Fault::ThermalViaOpen {
                delta: Celsius(3.0 * b),
            }),
        _ => FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::PsroN,
            replica: ReplicaSel::All,
        }),
    }
}

forall! {
    #![cases = 16]

    #[test]
    fn convert_batch_is_bit_identical_to_a_convert_loop(
        dvt_n in -0.02f64..0.02,
        dvt_p in -0.02f64..0.02,
        t0 in -20.0f64..110.0,
        t1 in -20.0f64..110.0,
        t2 in -20.0f64..110.0,
        kind in 0u64..7,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(dvt_n);
        die.d_vtp_d2d = Volt(dvt_p);
        let mut sensor =
            PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let mut rng = Pcg64::seed_from_u64(seed);
        sensor
            .prepare(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                &mut rng,
            )
            .unwrap();
        sensor.inject_faults(fault_plan(kind, a, b));

        let inputs: Vec<SensorInputs<'_>> = [t0, t1, t2]
            .iter()
            .map(|&t| SensorInputs::new(&die, DieSite::CENTER, Celsius(t)))
            .collect();

        // One-shot path: one `convert` per input, stopping at the first error
        // (the documented `convert_batch` failure contract).
        let mut rng_loop = Pcg64::seed_from_u64(seed ^ 0x0d1e_50fb_a7c4);
        let looped: Result<Vec<_>, _> = inputs
            .iter()
            .map(|i| sensor.convert(i, &mut rng_loop))
            .collect();

        // Batched path: identical fresh RNG, shared scratch workspace.
        let mut rng_batch = Pcg64::seed_from_u64(seed ^ 0x0d1e_50fb_a7c4);
        let batched = sensor.convert_batch(&inputs, &mut rng_batch);

        match (looped, batched) {
            (Ok(l), Ok(bt)) => {
                assert_eq!(l.len(), bt.len());
                for (x, y) in l.iter().zip(&bt) {
                    // Bitwise equality on every float the reading reports…
                    assert_eq!(x.temperature.0.to_bits(), y.temperature.0.to_bits());
                    assert_eq!(x.d_vtn.0.to_bits(), y.d_vtn.0.to_bits());
                    assert_eq!(x.d_vtp.0.to_bits(), y.d_vtp.0.to_bits());
                    assert_eq!(
                        x.raw_frequencies.0 .0.to_bits(),
                        y.raw_frequencies.0 .0.to_bits()
                    );
                    assert_eq!(
                        x.raw_frequencies.1 .0.to_bits(),
                        y.raw_frequencies.1 .0.to_bits()
                    );
                    assert_eq!(
                        x.raw_frequencies.2 .0.to_bits(),
                        y.raw_frequencies.2 .0.to_bits()
                    );
                    // …and structural equality on the rest (health events,
                    // energy ledger, solver iteration counts).
                    assert_eq!(x, y);
                }
                // Both paths must consume exactly the same RNG stream.
                assert_eq!(rng_loop.next_u64(), rng_batch.next_u64());
            }
            (Err(le), Err(be)) => {
                assert_eq!(format!("{le:?}"), format!("{be:?}"));
                assert_eq!(rng_loop.next_u64(), rng_batch.next_u64());
            }
            (l, bt) => panic!("paths diverged: loop={l:?} batch={bt:?}"),
        }
    }
}
