//! The sensor's ring-oscillator bank: two process-sensitive oscillators
//! (PSRO-N, PSRO-P) and one temperature-sensitive oscillator (TSRO).
//!
//! * **PSRO-N** pairs a deliberately *weak* (narrow) NMOS with a strong
//!   PMOS: the slow falling edge dominates the stage delay, so frequency
//!   tracks the NMOS drive current — i.e. `Vtn` and `µn`.
//! * **PSRO-P** mirrors this for the PMOS.
//! * **TSRO** is a balanced ring run at a near-threshold supply
//!   (`VDD ≈ Vt + 50 mV`), where delay is exponential in `Vt(T)/(n·kT/q)` —
//!   a strong, monotonic temperature dependence.
//!
//! The three rings sit at slightly different die sites, so they sample
//! slightly different within-die variation — a real error source the
//! evaluation must (and does) capture.

use crate::error::SensorError;
use ptsim_circuit::ring::{InverterRing, RingCache};
use ptsim_device::delay::ThermalPoint;
use ptsim_device::inverter::{CmosEnv, Inverter};
use ptsim_device::mosfet::{MosPolarity, Mosfet};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Farad, Hertz, Micron, Volt};
use ptsim_mc::die::DieSite;

/// Which oscillator of the bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoClass {
    /// NMOS-sensitive process oscillator.
    PsroN,
    /// PMOS-sensitive process oscillator.
    PsroP,
    /// Temperature-sensitive near-threshold oscillator.
    Tsro,
}

impl RoClass {
    /// All three classes in reporting order.
    pub const ALL: [RoClass; 3] = [RoClass::PsroN, RoClass::PsroP, RoClass::Tsro];

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RoClass::PsroN => "PSRO-N",
            RoClass::PsroP => "PSRO-P",
            RoClass::Tsro => "TSRO",
        }
    }
}

/// Physical design of the bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankSpec {
    /// Stages per process-sensitive ring (odd, ≥ 3).
    pub stages_psro: usize,
    /// Stages of the temperature ring (odd, ≥ 3).
    pub stages_tsro: usize,
    /// Width of the *weak* (sensing) device in a skewed inverter.
    pub weak_width: Micron,
    /// Width of the *strong* (non-dominant) device in a skewed inverter.
    pub strong_width: Micron,
    /// NMOS width of the balanced TSRO inverter (PMOS gets 2×).
    pub tsro_width: Micron,
    /// Extra wire load per ring node.
    pub wire_load: Farad,
    /// High measurement supply (mobility-dominated operating point).
    pub vdd_high: Volt,
    /// Low measurement supply (threshold-dominated operating point).
    pub vdd_low: Volt,
    /// TSRO supply (near-threshold).
    pub vdd_tsro: Volt,
    /// Normalized die-coordinate spacing between the bank's oscillators.
    pub site_spacing: f64,
}

impl BankSpec {
    /// Reference design for the 65 nm LP technology.
    #[must_use]
    pub fn default_65nm() -> Self {
        BankSpec {
            stages_psro: 51,
            stages_tsro: 51,
            weak_width: Micron(0.15),
            strong_width: Micron(1.2),
            tsro_width: Micron(0.2),
            wire_load: Farad(0.5e-15),
            vdd_high: Volt(1.0),
            vdd_low: Volt(0.55),
            vdd_tsro: Volt(0.40),
            site_spacing: 0.004,
        }
    }

    fn validate(&self) -> Result<(), SensorError> {
        for (name, v) in [
            ("vdd_high", self.vdd_high.0),
            ("vdd_low", self.vdd_low.0),
            ("vdd_tsro", self.vdd_tsro.0),
        ] {
            if !(v.is_finite() && v > 0.0 && v <= 1.4) {
                return Err(SensorError::InvalidConfig { name, value: v });
            }
        }
        if self.vdd_low.0 >= self.vdd_high.0 {
            return Err(SensorError::InvalidConfig {
                name: "vdd_low (must be below vdd_high)",
                value: self.vdd_low.0,
            });
        }
        if !(self.site_spacing.is_finite() && self.site_spacing >= 0.0 && self.site_spacing < 0.5) {
            return Err(SensorError::InvalidConfig {
                name: "site_spacing",
                value: self.site_spacing,
            });
        }
        Ok(())
    }
}

impl Default for BankSpec {
    fn default() -> Self {
        BankSpec::default_65nm()
    }
}

/// The instantiated oscillator bank.
#[derive(Debug, Clone, PartialEq)]
pub struct RoBank {
    spec: BankSpec,
    psro_n: InverterRing,
    psro_p: InverterRing,
    tsro: InverterRing,
}

impl RoBank {
    /// Builds the bank for a technology.
    ///
    /// # Errors
    ///
    /// Propagates device/circuit construction errors and validates the spec.
    pub fn new(tech: &Technology, spec: BankSpec) -> Result<Self, SensorError> {
        spec.validate()?;
        // PSRO-N: weak NMOS senses, strong PMOS keeps the other edge fast.
        let psro_n_inv = Inverter::new(
            Mosfet::min_length(MosPolarity::Nmos, spec.weak_width, tech)?,
            Mosfet::min_length(MosPolarity::Pmos, spec.strong_width, tech)?,
        )?;
        // PSRO-P: weak PMOS senses.
        let psro_p_inv = Inverter::new(
            Mosfet::min_length(MosPolarity::Nmos, spec.strong_width, tech)?,
            Mosfet::min_length(MosPolarity::Pmos, spec.weak_width, tech)?,
        )?;
        let tsro_inv = Inverter::balanced(spec.tsro_width, 2.0, tech)?;

        Ok(RoBank {
            spec,
            psro_n: InverterRing::new(spec.stages_psro, psro_n_inv, spec.wire_load, spec.vdd_low)?,
            psro_p: InverterRing::new(spec.stages_psro, psro_p_inv, spec.wire_load, spec.vdd_low)?,
            tsro: InverterRing::new(spec.stages_tsro, tsro_inv, spec.wire_load, spec.vdd_tsro)?,
        })
    }

    /// The bank's physical spec.
    #[must_use]
    pub fn spec(&self) -> &BankSpec {
        &self.spec
    }

    /// The ring of a class (at its default supply).
    #[must_use]
    pub fn ring(&self, class: RoClass) -> &InverterRing {
        match class {
            RoClass::PsroN => &self.psro_n,
            RoClass::PsroP => &self.psro_p,
            RoClass::Tsro => &self.tsro,
        }
    }

    /// Oscillation frequency of `class` at supply `vdd` under `env`.
    #[must_use]
    pub fn frequency(&self, tech: &Technology, class: RoClass, vdd: Volt, env: &CmosEnv) -> Hertz {
        self.ring(class).with_vdd(vdd).frequency(tech, env)
    }

    /// Layout site of a class relative to the bank centre.
    ///
    /// The three rings are placed in a tight cluster: PSRO-N left, PSRO-P
    /// right, TSRO above.
    #[must_use]
    pub fn site_of(&self, class: RoClass, center: DieSite) -> DieSite {
        let s = self.spec.site_spacing;
        match class {
            RoClass::PsroN => DieSite::new(center.x - s, center.y),
            RoClass::PsroP => DieSite::new(center.x + s, center.y),
            RoClass::Tsro => DieSite::new(center.x, center.y + s),
        }
    }
}

/// Precomputed hot-path evaluation state of the whole bank: one
/// [`RingCache`] per oscillator. Derived entirely from the immutable
/// `(Technology, RoBank)` pair at sensor construction, so it is rebuilt by
/// [`crate::sensor::PtSensor::new`] and cloned with the sensor.
///
/// Bit-identity contract: every frequency/energy this cache produces is
/// bit-identical to the corresponding uncached [`RoBank`] evaluation (see
/// the exact-memoization contract on
/// [`DelayCache`](ptsim_device::delay::DelayCache)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankCache {
    psro_n: RingCache,
    psro_p: RingCache,
    tsro: RingCache,
}

impl BankCache {
    /// Hoists the temperature-independent state of every ring of `bank`.
    #[must_use]
    pub fn new(tech: &Technology, bank: &RoBank) -> Self {
        BankCache {
            psro_n: RingCache::new(bank.ring(RoClass::PsroN), tech),
            psro_p: RingCache::new(bank.ring(RoClass::PsroP), tech),
            tsro: RingCache::new(bank.ring(RoClass::Tsro), tech),
        }
    }

    /// The cache of one ring.
    #[must_use]
    pub fn ring(&self, class: RoClass) -> &RingCache {
        match class {
            RoClass::PsroN => &self.psro_n,
            RoClass::PsroP => &self.psro_p,
            RoClass::Tsro => &self.tsro,
        }
    }

    /// Shared per-temperature quantities at `temp`. A [`ThermalPoint`] is a
    /// pure function of the temperature and the technology, so the point is
    /// identical for all three rings and can be computed once per
    /// evaluation temperature (one `powf`) and reused across the bank.
    #[must_use]
    pub fn thermal(&self, temp: Celsius) -> ThermalPoint {
        self.tsro.thermal(temp)
    }

    /// Cached, bit-identical [`RoBank::frequency`].
    #[must_use]
    pub fn frequency(&self, class: RoClass, vdd: Volt, env: &CmosEnv) -> Hertz {
        let rc = self.ring(class);
        rc.frequency(&rc.thermal(env.temp), vdd, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_rng::forall;

    fn bank() -> (Technology, RoBank) {
        let tech = Technology::n65();
        let bank = RoBank::new(&tech, BankSpec::default_65nm()).unwrap();
        (tech, bank)
    }

    fn rel_sensitivity(
        tech: &Technology,
        bank: &RoBank,
        class: RoClass,
        vdd: Volt,
        which: RoClass, // PsroN → perturb Vtn, PsroP → perturb Vtp
    ) -> f64 {
        let base = CmosEnv::nominal();
        let mut pert = base;
        match which {
            RoClass::PsroN => pert.d_vtn = Volt(0.010),
            RoClass::PsroP => pert.d_vtp = Volt(0.010),
            RoClass::Tsro => unreachable!(),
        }
        let f0 = bank.frequency(tech, class, vdd, &base).0;
        let f1 = bank.frequency(tech, class, vdd, &pert).0;
        ((f1 - f0) / f0).abs()
    }

    #[test]
    fn psro_n_tracks_vtn_more_than_vtp() {
        let (tech, bank) = bank();
        let vdd = bank.spec().vdd_low;
        let sn = rel_sensitivity(&tech, &bank, RoClass::PsroN, vdd, RoClass::PsroN);
        let sp = rel_sensitivity(&tech, &bank, RoClass::PsroN, vdd, RoClass::PsroP);
        assert!(sn > 2.5 * sp, "Vtn sens {sn:.4} vs Vtp sens {sp:.4}");
    }

    #[test]
    fn psro_p_tracks_vtp_more_than_vtn() {
        let (tech, bank) = bank();
        let vdd = bank.spec().vdd_low;
        let sp = rel_sensitivity(&tech, &bank, RoClass::PsroP, vdd, RoClass::PsroP);
        let sn = rel_sensitivity(&tech, &bank, RoClass::PsroP, vdd, RoClass::PsroN);
        assert!(sp > 2.5 * sn, "Vtp sens {sp:.4} vs Vtn sens {sn:.4}");
    }

    #[test]
    fn low_supply_more_vt_sensitive_than_high() {
        let (tech, bank) = bank();
        let lo = rel_sensitivity(
            &tech,
            &bank,
            RoClass::PsroN,
            bank.spec().vdd_low,
            RoClass::PsroN,
        );
        let hi = rel_sensitivity(
            &tech,
            &bank,
            RoClass::PsroN,
            bank.spec().vdd_high,
            RoClass::PsroN,
        );
        assert!(lo > 1.5 * hi, "low-VDD {lo:.4} vs high-VDD {hi:.4}");
    }

    #[test]
    fn tsro_strongly_temperature_dependent() {
        let (tech, bank) = bank();
        let spec = *bank.spec();
        let f25 = bank
            .frequency(
                &tech,
                RoClass::Tsro,
                spec.vdd_tsro,
                &CmosEnv::at(Celsius(25.0)),
            )
            .0;
        let f75 = bank
            .frequency(
                &tech,
                RoClass::Tsro,
                spec.vdd_tsro,
                &CmosEnv::at(Celsius(75.0)),
            )
            .0;
        let per_degree = (f75 / f25).ln() / 50.0;
        assert!(
            per_degree > 0.005,
            "TSRO should gain >0.5%/°C, got {:.3}%/°C",
            per_degree * 100.0
        );
        // And it must be faster when hot (monotonic increasing).
        assert!(f75 > f25);
    }

    #[test]
    fn tsro_more_t_sensitive_than_psros() {
        let (tech, bank) = bank();
        let spec = *bank.spec();
        let sens = |class: RoClass, vdd: Volt| {
            let f25 = bank
                .frequency(&tech, class, vdd, &CmosEnv::at(Celsius(25.0)))
                .0;
            let f75 = bank
                .frequency(&tech, class, vdd, &CmosEnv::at(Celsius(75.0)))
                .0;
            ((f75 / f25).ln() / 50.0).abs()
        };
        let t_tsro = sens(RoClass::Tsro, spec.vdd_tsro);
        let t_psro = sens(RoClass::PsroN, spec.vdd_low);
        assert!(t_tsro > 2.0 * t_psro);
    }

    #[test]
    fn frequencies_countable() {
        // All rings must land in a range a 16-bit counter with a 32 MHz
        // reference can measure (directly or with a small prescaler).
        let (tech, bank) = bank();
        let spec = *bank.spec();
        for (class, vdd) in [
            (RoClass::PsroN, spec.vdd_low),
            (RoClass::PsroN, spec.vdd_high),
            (RoClass::PsroP, spec.vdd_low),
            (RoClass::PsroP, spec.vdd_high),
            (RoClass::Tsro, spec.vdd_tsro),
        ] {
            let f = bank.frequency(&tech, class, vdd, &CmosEnv::nominal());
            assert!(f.0 > 1e6 && f.0 < 8e9, "{} at {vdd}: {f}", class.name());
        }
    }

    #[test]
    fn sites_form_a_cluster() {
        let (_, bank) = bank();
        let c = DieSite::new(0.5, 0.5);
        let n = bank.site_of(RoClass::PsroN, c);
        let p = bank.site_of(RoClass::PsroP, c);
        let t = bank.site_of(RoClass::Tsro, c);
        assert!(n.x < c.x && p.x > c.x && t.y > c.y);
        let d = bank.spec().site_spacing;
        assert!((p.x - n.x - 2.0 * d).abs() < 1e-12);
    }

    #[test]
    fn spec_validation() {
        let tech = Technology::n65();
        let mut bad = BankSpec::default_65nm();
        bad.vdd_low = Volt(1.2);
        assert!(RoBank::new(&tech, bad).is_err());
        let mut bad = BankSpec::default_65nm();
        bad.site_spacing = 0.7;
        assert!(RoBank::new(&tech, bad).is_err());
        let mut bad = BankSpec::default_65nm();
        bad.stages_psro = 10;
        assert!(RoBank::new(&tech, bad).is_err());
    }

    #[test]
    fn class_names() {
        assert_eq!(RoClass::PsroN.name(), "PSRO-N");
        assert_eq!(RoClass::ALL.len(), 3);
    }

    forall! {
        #[test]
        fn bank_cache_is_bit_identical_for_every_ring(
            t in -55.0f64..150.0,
            dn in -0.05f64..0.05,
            dp in -0.05f64..0.05,
            mu in 0.85f64..1.2,
            vdd in 0.38f64..1.1,
        ) {
            let (tech, bank) = bank();
            let cache = BankCache::new(&tech, &bank);
            let env = CmosEnv {
                temp: Celsius(t),
                d_vtn: Volt(dn),
                d_vtp: Volt(dp),
                mu_n: mu,
                mu_p: 2.0 - mu,
            };
            let th = cache.thermal(env.temp);
            for class in RoClass::ALL {
                let cached = cache.frequency(class, Volt(vdd), &env);
                let reference = bank.frequency(&tech, class, Volt(vdd), &env);
                assert_eq!(cached.0.to_bits(), reference.0.to_bits(), "{}", class.name());
                // The shared thermal point is identical to each ring's own.
                assert_eq!(
                    cache.ring(class).frequency(&th, Volt(vdd), &env).0.to_bits(),
                    reference.0.to_bits(),
                );
            }
        }
    }
}
