//! Supply-voltage monitoring — the "V" that turns the PT sensor into the
//! full PVT sensor of the group's 2013 follow-up.
//!
//! A balanced ring oscillator's frequency is strongly and monotonically
//! supply-dependent. Once the PT sensor has extracted the die's process
//! state and solved temperature, the same inversion machinery turns one
//! more RO measurement into a supply-voltage estimate: droop on the local
//! rail shows up as a frequency deficit against the model at the known
//! (P, T) point.

use crate::error::SensorError;
use crate::newton::{newton_solve, NewtonOptions};
use ptsim_circuit::counter::{auto_measure, GatedCounter};
use ptsim_circuit::ring::InverterRing;
use ptsim_device::inverter::{CmosEnv, Inverter};
use ptsim_device::process::Technology;
use ptsim_device::units::{Farad, Hertz, Micron, Volt};
use ptsim_rng::Rng;

/// A supply-voltage monitor built on one balanced ring oscillator.
#[derive(Debug, Clone, PartialEq)]
pub struct VddMonitor {
    tech: Technology,
    ring: InverterRing,
    nominal_vdd: Volt,
    counter_bits: u32,
    window_cycles: u64,
    ref_clock: Hertz,
    /// Log-domain per-die correction stored at preparation.
    ln_scale: Option<f64>,
}

impl VddMonitor {
    /// Builds a monitor for the given nominal supply.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for a non-positive nominal
    /// supply; propagates ring construction errors.
    pub fn new(tech: Technology, nominal_vdd: Volt) -> Result<Self, SensorError> {
        if !(nominal_vdd.0.is_finite() && nominal_vdd.0 > 0.3 && nominal_vdd.0 <= 1.4) {
            return Err(SensorError::InvalidConfig {
                name: "nominal_vdd",
                value: nominal_vdd.0,
            });
        }
        let inv = Inverter::balanced(Micron(0.4), 2.0, &tech)?;
        let ring = InverterRing::new(41, inv, Farad(0.4e-15), nominal_vdd)?;
        Ok(VddMonitor {
            tech,
            ring,
            nominal_vdd,
            counter_bits: 16,
            window_cycles: 448,
            ref_clock: Hertz(32.0e6),
            ln_scale: None,
        })
    }

    /// Nominal supply.
    #[must_use]
    pub fn nominal_vdd(&self) -> Volt {
        self.nominal_vdd
    }

    fn measure<R: Rng + ?Sized>(
        &self,
        actual_vdd: Volt,
        env: &CmosEnv,
        rng: &mut R,
    ) -> Result<Hertz, SensorError> {
        let counter = GatedCounter::new(self.counter_bits, self.window_cycles)?;
        let f_true = self.ring.with_vdd(actual_vdd).frequency(&self.tech, env);
        let (f, _) = auto_measure(f_true, &counter, self.ref_clock, rng.gen())?;
        Ok(f)
    }

    fn model_ln_f(&self, vdd: Volt, env: &CmosEnv) -> f64 {
        self.ring.with_vdd(vdd).frequency(&self.tech, env).0.ln()
    }

    /// One-time preparation at a known-good supply: absorbs the monitor
    /// ring's own local mismatch into a stored correction. `known_env` is
    /// the process/temperature state reported by the PT sensor.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures.
    pub fn prepare<R: Rng + ?Sized>(
        &mut self,
        known_env: &CmosEnv,
        rng: &mut R,
    ) -> Result<(), SensorError> {
        let f = self.measure(self.nominal_vdd, known_env, rng)?;
        self.ln_scale = Some(f.0.ln() - self.model_ln_f(self.nominal_vdd, known_env));
        Ok(())
    }

    /// Estimates the present supply voltage.
    ///
    /// `actual_vdd` is the true rail value (what the physical ring runs
    /// from); `known_env` is the PT sensor's current process/temperature
    /// state, which the inversion holds fixed.
    ///
    /// # Errors
    ///
    /// * [`SensorError::NotCalibrated`] if [`VddMonitor::prepare`] has not
    ///   run;
    /// * solver errors if the 1-D Newton inversion diverges.
    pub fn read_vdd<R: Rng + ?Sized>(
        &self,
        actual_vdd: Volt,
        known_env: &CmosEnv,
        rng: &mut R,
    ) -> Result<Volt, SensorError> {
        let ln_scale = self.ln_scale.ok_or(SensorError::NotCalibrated)?;
        let f = self.measure(actual_vdd, known_env, rng)?;
        let mut x = [self.nominal_vdd.0];
        newton_solve(
            &mut x,
            |v| vec![self.model_ln_f(Volt(v[0]), known_env) + ln_scale - f.0.ln()],
            &[1e-4],
            &[0.2],
            &NewtonOptions::default(),
            "supply voltage",
        )?;
        Ok(Volt(x[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::units::Celsius;
    use ptsim_rng::Pcg64;

    fn prepared() -> (VddMonitor, Pcg64) {
        let mut m = VddMonitor::new(Technology::n65(), Volt(1.0)).unwrap();
        let mut rng = Pcg64::seed_from_u64(7);
        m.prepare(&CmosEnv::at(Celsius(25.0)), &mut rng).unwrap();
        (m, rng)
    }

    #[test]
    fn rejects_bad_nominal() {
        assert!(VddMonitor::new(Technology::n65(), Volt(0.1)).is_err());
        assert!(VddMonitor::new(Technology::n65(), Volt(f64::NAN)).is_err());
        assert!(VddMonitor::new(Technology::n65(), Volt(1.0)).is_ok());
    }

    #[test]
    fn read_before_prepare_fails() {
        let m = VddMonitor::new(Technology::n65(), Volt(1.0)).unwrap();
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(
            m.read_vdd(Volt(1.0), &CmosEnv::nominal(), &mut rng)
                .unwrap_err(),
            SensorError::NotCalibrated
        );
    }

    #[test]
    fn recovers_droop_within_millivolts() {
        let (m, mut rng) = prepared();
        let env = CmosEnv::at(Celsius(25.0));
        for droop_mv in [-80.0, -50.0, -20.0, 0.0, 20.0, 50.0] {
            let actual = Volt(1.0 + droop_mv * 1e-3);
            let est = m.read_vdd(actual, &env, &mut rng).unwrap();
            assert!(
                (est - actual).millivolts().abs() < 2.0,
                "droop {droop_mv} mV: estimated {est}, actual {actual}"
            );
        }
    }

    #[test]
    fn tracks_across_temperature_given_known_t() {
        let (m, mut rng) = prepared();
        for t in [0.0, 50.0, 100.0] {
            let env = CmosEnv::at(Celsius(t));
            let actual = Volt(0.95);
            let est = m.read_vdd(actual, &env, &mut rng).unwrap();
            assert!(
                (est - actual).millivolts().abs() < 3.0,
                "at {t} °C: estimated {est}"
            );
        }
    }

    #[test]
    fn process_shift_absorbed_by_preparation() {
        let mut m = VddMonitor::new(Technology::n65(), Volt(1.0)).unwrap();
        let mut rng = Pcg64::seed_from_u64(3);
        // A skewed die, but the PT sensor reports its state exactly.
        let env = CmosEnv {
            d_vtn: Volt(0.02),
            d_vtp: Volt(0.015),
            mu_n: 1.03,
            mu_p: 0.98,
            ..CmosEnv::at(Celsius(25.0))
        };
        m.prepare(&env, &mut rng).unwrap();
        let est = m.read_vdd(Volt(0.93), &env, &mut rng).unwrap();
        assert!((est.0 - 0.93).abs() < 3e-3, "estimated {est}");
    }

    #[test]
    fn wrong_temperature_knowledge_biases_estimate() {
        let (m, mut rng) = prepared();
        let truth_env = CmosEnv::at(Celsius(25.0));
        let wrong_env = CmosEnv::at(Celsius(60.0));
        let actual = Volt(1.0);
        // Measure at 25 °C truth but invert believing 60 °C.
        let f_env = truth_env;
        let est_right = m.read_vdd(actual, &f_env, &mut rng).unwrap();
        let est_wrong = {
            // Simulate: physical ring at 25 °C, model evaluated at 60 °C.
            let counter = GatedCounter::new(16, 448).unwrap();
            let f_true = m.ring.with_vdd(actual).frequency(&m.tech, &truth_env);
            let (f, _) = auto_measure(f_true, &counter, Hertz(32.0e6), 0.5).unwrap();
            let mut x = [1.0];
            newton_solve(
                &mut x,
                |v| vec![m.model_ln_f(Volt(v[0]), &wrong_env) + m.ln_scale.unwrap() - f.0.ln()],
                &[1e-4],
                &[0.2],
                &NewtonOptions::default(),
                "test",
            )
            .unwrap();
            Volt(x[0])
        };
        assert!(
            (est_wrong - actual).0.abs() > 2.0 * (est_right - actual).0.abs(),
            "temperature knowledge must matter: {est_wrong} vs {est_right}"
        );
    }
}
