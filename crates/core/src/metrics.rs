//! Pipeline observability: a pre-registered metric set over the
//! [`ptsim_obs`] registry, threaded through the conversion pipeline via
//! [`Scratch`](crate::Scratch).
//!
//! The contract is strict in both directions:
//!
//! * **Reads, never perturbs.** Recording a metric consumes no randomness
//!   and changes no float operation in the pipeline; a conversion with
//!   metrics enabled is bit-identical to one without (asserted by
//!   `tests/metrics.rs`).
//! * **Free when off, allocation-free when on.** Without the `obs` cargo
//!   feature, [`PipelineMetrics`] is a zero-sized type and every recording
//!   method compiles to nothing. With it, every counter/gauge/histogram is
//!   registered at construction ([`PipelineMetrics::new`]), so the hot path
//!   only performs indexed adds — the counting-allocator test in
//!   `tests/zero_alloc.rs` runs with metrics on.
//!
//! The registry layout (names are stable; DESIGN.md documents the full
//! set): `pipeline.*` conversion/calibration/error totals, `acquire.*`
//! replica measurements and their rejections, `gate.*` vote and retry
//! outcomes, `solve.*` escalation events and Newton work, `health.*` final
//! status tallies, `energy.conversion_pj` the per-conversion energy
//! histogram, and `span.*_us` per-stage wall-clock histograms (also mirrored
//! to stderr when `PTSIM_TRACE` is set).

use crate::health::HealthStatus;
#[cfg(feature = "obs")]
use ptsim_obs::{CounterId, HistogramId, Registry, Snapshot};
use std::time::Duration;

/// The instrumented points of the conversion pipeline, used to label span
/// timings. `Conversion` and `Calibration` cover a whole pipeline run; the
/// rest are its stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Raw replica measurement rounds (inside the gate stage's retry loop).
    Acquire,
    /// Plausibility gating, majority vote, and retries.
    Gate,
    /// The Newton decoupling solves and their escalation ladder.
    Solve,
    /// Range/drift bounding, energy accounting, quantization.
    Output,
    /// One full conversion (acquire → gate → solve → output).
    Conversion,
    /// One full self-calibration pass.
    Calibration,
}

impl Stage {
    /// Stable name used for the span histogram and the trace emitter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Acquire => "acquire",
            Stage::Gate => "gate",
            Stage::Solve => "solve",
            Stage::Output => "output",
            Stage::Conversion => "conversion",
            Stage::Calibration => "calibration",
        }
    }
}

#[cfg(feature = "obs")]
#[derive(Debug, Clone, Copy)]
struct Ids {
    conversions: CounterId,
    calibrations: CounterId,
    errors: CounterId,
    replicas: CounterId,
    implausible: CounterId,
    saturated: CounterId,
    outvoted: CounterId,
    spread: CounterId,
    retries: CounterId,
    recovered: CounterId,
    channels_lost: CounterId,
    retunes: CounterId,
    rom_fallbacks: CounterId,
    degraded_temp_only: CounterId,
    newton_iterations: CounterId,
    newton_backoffs: CounterId,
    health_nominal: CounterId,
    health_recovered: CounterId,
    health_degraded: CounterId,
    energy_pj: HistogramId,
    spans_us: [HistogramId; 6],
}

/// The pipeline's pre-registered metric set. One lives (optionally) inside
/// every [`Scratch`](crate::Scratch); the MC driver merges per-worker
/// instances with [`PipelineMetrics::merge`].
///
/// With the `obs` feature disabled this is a zero-sized no-op type — the
/// recording methods still exist so instrumentation sites need no `cfg`.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    #[cfg(feature = "obs")]
    reg: Registry,
    #[cfg(feature = "obs")]
    ids: Ids,
}

impl PipelineMetrics {
    /// Registers the full metric set up front so every later recording is
    /// an indexed, allocation-free update.
    #[must_use]
    pub fn new() -> Self {
        #[cfg(feature = "obs")]
        {
            let mut reg = Registry::new();
            let ids = Ids {
                conversions: reg.counter("pipeline.conversions"),
                calibrations: reg.counter("pipeline.calibrations"),
                errors: reg.counter("pipeline.errors"),
                replicas: reg.counter("acquire.replicas"),
                implausible: reg.counter("acquire.implausible"),
                saturated: reg.counter("acquire.saturated"),
                outvoted: reg.counter("gate.outvoted"),
                spread: reg.counter("gate.spread"),
                retries: reg.counter("gate.retries"),
                recovered: reg.counter("gate.recovered"),
                channels_lost: reg.counter("gate.channels_lost"),
                retunes: reg.counter("solve.retunes"),
                rom_fallbacks: reg.counter("solve.rom_fallbacks"),
                degraded_temp_only: reg.counter("solve.degraded_temp_only"),
                newton_iterations: reg.counter("solve.newton_iterations"),
                newton_backoffs: reg.counter("solve.newton_backoffs"),
                health_nominal: reg.counter("health.nominal"),
                health_recovered: reg.counter("health.recovered"),
                health_degraded: reg.counter("health.degraded"),
                // Paper nominal is 367.5 pJ/conversion; retries and widened
                // windows push a faulted die to a few nJ, which the clamped
                // top bin absorbs (still counted, see Histogram docs).
                energy_pj: reg.histogram("energy.conversion_pj", 0.0, 2000.0, 80),
                spans_us: [
                    reg.histogram("span.acquire_us", 0.0, 50.0, 50),
                    reg.histogram("span.gate_us", 0.0, 50.0, 50),
                    reg.histogram("span.solve_us", 0.0, 50.0, 50),
                    reg.histogram("span.output_us", 0.0, 50.0, 50),
                    reg.histogram("span.conversion_us", 0.0, 200.0, 50),
                    reg.histogram("span.calibration_us", 0.0, 400.0, 50),
                ],
            };
            PipelineMetrics { reg, ids }
        }
        #[cfg(not(feature = "obs"))]
        {
            PipelineMetrics {}
        }
    }

    /// One completed conversion.
    #[inline]
    pub fn on_conversion(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.conversions);
    }

    /// One completed self-calibration.
    #[inline]
    pub fn on_calibration(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.calibrations);
    }

    /// One conversion or calibration that returned an error.
    #[inline]
    pub fn on_error(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.errors);
    }

    /// One raw replica measurement.
    #[inline]
    pub fn on_replica(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.replicas);
    }

    /// One replica sample rejected by its plausibility band.
    #[inline]
    pub fn on_implausible(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.implausible);
    }

    /// One replica sample lost to counter saturation.
    #[inline]
    pub fn on_saturated(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.saturated);
    }

    /// One replica outvoted by the majority.
    #[inline]
    pub fn on_outvoted(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.outvoted);
    }

    /// One vote with excess inlier spread.
    #[inline]
    pub fn on_spread(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.spread);
    }

    /// One widened-window retry.
    #[inline]
    pub fn on_retry(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.retries);
    }

    /// One channel recovered by a retry.
    #[inline]
    pub fn on_recovered(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.recovered);
    }

    /// One channel declared lost after exhausting retries.
    #[inline]
    pub fn on_channel_lost(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.channels_lost);
    }

    /// One solver escalation to the robust tuning.
    #[inline]
    pub fn on_solver_retuned(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.retunes);
    }

    /// One last-ditch ROM-bisection fallback.
    #[inline]
    pub fn on_rom_fallback(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.rom_fallbacks);
    }

    /// One conversion degraded to temperature-only mode.
    #[inline]
    pub fn on_degraded(&mut self) {
        #[cfg(feature = "obs")]
        self.reg.inc(self.ids.degraded_temp_only);
    }

    /// Newton iterations (or ROM model evaluations) spent by one solve.
    #[inline]
    pub fn on_solver_iterations(&mut self, iterations: usize) {
        #[cfg(feature = "obs")]
        self.reg.add(self.ids.newton_iterations, iterations as u64);
        #[cfg(not(feature = "obs"))]
        let _ = iterations;
    }

    /// Adaptive damping back-offs (reverted steps) spent by one solve.
    #[inline]
    pub fn on_newton_backoffs(&mut self, backoffs: u64) {
        #[cfg(feature = "obs")]
        self.reg.add(self.ids.newton_backoffs, backoffs);
        #[cfg(not(feature = "obs"))]
        let _ = backoffs;
    }

    /// Energy of one completed conversion, in picojoules.
    #[inline]
    pub fn on_energy_pj(&mut self, pj: f64) {
        #[cfg(feature = "obs")]
        self.reg.observe(self.ids.energy_pj, pj);
        #[cfg(not(feature = "obs"))]
        let _ = pj;
    }

    /// Final health status of one completed conversion or calibration.
    #[inline]
    pub fn on_health(&mut self, status: HealthStatus) {
        #[cfg(feature = "obs")]
        self.reg.inc(match status {
            HealthStatus::Nominal => self.ids.health_nominal,
            HealthStatus::Recovered => self.ids.health_recovered,
            HealthStatus::Degraded => self.ids.health_degraded,
        });
        #[cfg(not(feature = "obs"))]
        let _ = status;
    }

    /// Wall-clock duration of one instrumented stage: recorded in the
    /// stage's `span.*_us` histogram and mirrored to stderr when
    /// `PTSIM_TRACE` is set.
    #[inline]
    pub fn on_span(&mut self, stage: Stage, elapsed: Duration) {
        #[cfg(feature = "obs")]
        {
            let id = self.ids.spans_us[stage as usize];
            self.reg.observe(id, elapsed.as_secs_f64() * 1e6);
            ptsim_obs::span::emit(stage.name(), elapsed);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (stage, elapsed);
    }

    /// Folds another instance's registry into this one (counters sum,
    /// gauges max, histograms bin-wise) — how per-worker metrics become one
    /// campaign snapshot.
    #[cfg(feature = "obs")]
    pub fn merge(&mut self, other: &PipelineMetrics) {
        self.reg.merge(&other.reg);
    }

    /// Direct access to the registry, for callers that attach their own
    /// metrics (e.g. the MC driver's worker gauges) next to the pipeline's.
    #[cfg(feature = "obs")]
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.reg
    }

    /// Plain-data copy of every metric (see [`Snapshot::to_json`]).
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.reg.snapshot()
    }
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        PipelineMetrics::new()
    }
}

/// Starts a stage timer only when metrics are active; compiles to a no-op
/// without the `obs` feature, so the disabled pipeline never reads the
/// clock.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StageTimer {
    #[cfg(feature = "obs")]
    start: Option<std::time::Instant>,
}

impl StageTimer {
    /// Reads the clock when `active` is true (i.e. metrics are present).
    #[inline]
    pub(crate) fn start(active: bool) -> Self {
        #[cfg(feature = "obs")]
        {
            StageTimer {
                start: active.then(std::time::Instant::now),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = active;
            StageTimer {}
        }
    }

    /// Records the elapsed time against `stage` if both the timer and the
    /// metrics are live.
    #[inline]
    pub(crate) fn stop(self, metrics: &mut Option<PipelineMetrics>, stage: Stage) {
        #[cfg(feature = "obs")]
        if let (Some(t0), Some(m)) = (self.start, metrics.as_mut()) {
            m.on_span(stage, t0.elapsed());
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (metrics, stage);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_methods_are_safe_and_observable() {
        let mut m = PipelineMetrics::new();
        m.on_conversion();
        m.on_conversion();
        m.on_replica();
        m.on_solver_iterations(7);
        m.on_energy_pj(367.5);
        m.on_health(HealthStatus::Nominal);
        m.on_health(HealthStatus::Degraded);
        m.on_span(Stage::Solve, Duration::from_micros(3));
        #[cfg(feature = "obs")]
        {
            let s = m.snapshot();
            assert_eq!(s.counter("pipeline.conversions"), Some(2));
            assert_eq!(s.counter("acquire.replicas"), Some(1));
            assert_eq!(s.counter("solve.newton_iterations"), Some(7));
            assert_eq!(s.counter("health.nominal"), Some(1));
            assert_eq!(s.counter("health.degraded"), Some(1));
            assert_eq!(s.histogram("energy.conversion_pj").unwrap().total, 1);
            assert_eq!(s.histogram("span.solve_us").unwrap().total, 1);
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn merge_sums_worker_instances() {
        let mut a = PipelineMetrics::new();
        a.on_conversion();
        let mut b = PipelineMetrics::new();
        b.on_conversion();
        b.on_retry();
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counter("pipeline.conversions"), Some(2));
        assert_eq!(s.counter("gate.retries"), Some(1));
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Acquire.name(), "acquire");
        assert_eq!(Stage::Calibration.name(), "calibration");
    }
}
