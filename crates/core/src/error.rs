//! Error type for the sensor crate.

use ptsim_device::error::DeviceError;
use ptsim_device::units::Celsius;
use std::error::Error;
use std::fmt;

/// Errors produced by sensor construction, calibration, and conversion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SensorError {
    /// A device-model construction failed.
    Device(DeviceError),
    /// A circuit-block construction failed.
    Circuit(ptsim_circuit::error::CircuitError),
    /// The Newton decoupling solver did not converge.
    SolverDiverged {
        /// What was being solved.
        what: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// The linear system inside a Newton step was singular.
    SingularJacobian {
        /// What was being solved.
        what: &'static str,
    },
    /// The Jacobian was numerically solvable but so badly conditioned the
    /// solution cannot be trusted (condition estimate above the configured
    /// limit).
    IllConditioned {
        /// What was being solved.
        what: &'static str,
        /// Lower-bound condition-number estimate.
        condition: f64,
    },
    /// An oscillator channel produced no plausible measurement even after
    /// retries — the sensor cannot convert.
    ChannelFailed {
        /// Display name of the failed channel.
        channel: &'static str,
    },
    /// The parity scrub found corrupted calibration registers; the reading
    /// was refused and the sensor must self-recalibrate.
    CalibrationCorrupted {
        /// Bitmask of corrupted registers (bit *i* = register *i*, in
        /// `ΔVtn, ΔVtp, µn, µp, ln-scale` order).
        registers: u8,
    },
    /// A calibration register index outside `0..CALIB_REGISTERS` was
    /// requested — a corrupted register pointer in a controller, not a
    /// reason to abort a fleet worker.
    InvalidRegister {
        /// The offending register index.
        index: usize,
    },
    /// A read was attempted before calibration.
    NotCalibrated,
    /// The solved temperature fell outside the sensor's characterized range.
    TemperatureOutOfRange {
        /// The solved value.
        solved: Celsius,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::Device(e) => write!(f, "device model error: {e}"),
            SensorError::Circuit(e) => write!(f, "circuit block error: {e}"),
            SensorError::SolverDiverged {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} solve diverged after {iterations} iterations (residual {residual:.3e})"
            ),
            SensorError::SingularJacobian { what } => {
                write!(f, "singular jacobian while solving {what}")
            }
            SensorError::IllConditioned { what, condition } => {
                write!(
                    f,
                    "jacobian while solving {what} is ill-conditioned (estimate {condition:.3e})"
                )
            }
            SensorError::ChannelFailed { channel } => {
                write!(
                    f,
                    "oscillator channel {channel} failed: no plausible measurement after retries"
                )
            }
            SensorError::CalibrationCorrupted { registers } => {
                write!(
                    f,
                    "calibration registers corrupted (parity mask {registers:#07b}); recalibrate"
                )
            }
            SensorError::InvalidRegister { index } => {
                write!(
                    f,
                    "calibration register index {index} out of range (0..{})",
                    crate::calib::CALIB_REGISTERS
                )
            }
            SensorError::NotCalibrated => {
                write!(f, "sensor has not been calibrated (call calibrate first)")
            }
            SensorError::TemperatureOutOfRange { solved } => {
                write!(f, "solved temperature {solved} outside characterized range")
            }
            SensorError::InvalidConfig { name, value } => {
                write!(f, "invalid sensor configuration: {name} = {value}")
            }
        }
    }
}

impl Error for SensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SensorError::Device(e) => Some(e),
            SensorError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for SensorError {
    fn from(e: DeviceError) -> Self {
        SensorError::Device(e)
    }
}

impl From<ptsim_circuit::error::CircuitError> for SensorError {
    fn from(e: ptsim_circuit::error::CircuitError) -> Self {
        SensorError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: SensorError = DeviceError::InvalidParameter {
            name: "beta",
            value: 0.0,
        }
        .into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("device"));
    }

    #[test]
    fn not_calibrated_message() {
        assert!(SensorError::NotCalibrated.to_string().contains("calibrate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SensorError>();
    }
}
