//! Temperature-field estimation from sparse sensors, and sensor placement.
//!
//! A 3D-IC integrates a handful of PT sensors per tier, but thermal
//! management needs the whole-tier picture. This module provides the two
//! standard tools:
//!
//! * [`FieldEstimator`] — inverse-distance-weighted reconstruction of a
//!   tier's temperature field from the sensor readings;
//! * [`place_sensors_greedy`] — chooses sensor sites from a candidate set by
//!   greedily minimizing the worst reconstruction error over a set of
//!   training thermal fields (representative workloads).

use crate::error::SensorError;
use ptsim_device::units::Celsius;
use ptsim_mc::die::DieSite;
use ptsim_thermal::stack::ThermalStack;

/// Inverse-distance-weighted field reconstruction from point readings.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldEstimator {
    sites: Vec<DieSite>,
    readings: Vec<Celsius>,
    exponent: f64,
}

impl FieldEstimator {
    /// Builds an estimator from sensor sites and their readings.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] if the slices are empty or
    /// their lengths differ.
    pub fn new(sites: Vec<DieSite>, readings: Vec<Celsius>) -> Result<Self, SensorError> {
        if sites.is_empty() || sites.len() != readings.len() {
            return Err(SensorError::InvalidConfig {
                name: "sites/readings length",
                value: sites.len() as f64,
            });
        }
        Ok(FieldEstimator {
            sites,
            readings,
            exponent: 2.0,
        })
    }

    /// Sensor sites.
    #[must_use]
    pub fn sites(&self) -> &[DieSite] {
        &self.sites
    }

    /// Estimated temperature at normalized coordinates.
    #[must_use]
    pub fn estimate(&self, x: f64, y: f64) -> Celsius {
        let mut num = 0.0;
        let mut den = 0.0;
        for (site, reading) in self.sites.iter().zip(&self.readings) {
            let d2 = (x - site.x).powi(2) + (y - site.y).powi(2);
            if d2 < 1e-12 {
                return *reading;
            }
            let w = d2.powf(-self.exponent / 2.0);
            num += w * reading.0;
            den += w;
        }
        Celsius(num / den)
    }

    /// Reconstruction error against a solved thermal stack on `tier`:
    /// `(max |error|, rms error)` over the tier's grid cells.
    ///
    /// # Errors
    ///
    /// Propagates tier-range errors from the thermal stack.
    pub fn error_against(
        &self,
        stack: &ThermalStack,
        tier: usize,
    ) -> Result<(f64, f64), SensorError> {
        let cfg = stack.config();
        let mut max_err: f64 = 0.0;
        let mut sum_sq = 0.0;
        let n = (cfg.nx * cfg.ny) as f64;
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let x = (ix as f64 + 0.5) / cfg.nx as f64;
                let y = (iy as f64 + 0.5) / cfg.ny as f64;
                let truth = stack
                    .temperature(tier, ix, iy)
                    .map_err(|_| SensorError::InvalidConfig {
                        name: "tier",
                        value: tier as f64,
                    })?
                    .0;
                let err = self.estimate(x, y).0 - truth;
                max_err = max_err.max(err.abs());
                sum_sq += err * err;
            }
        }
        Ok((max_err, (sum_sq / n).sqrt()))
    }
}

/// Ideal-sensor reconstruction error of a site subset on one training field
/// (used by the placement search: placement is a geometry problem, so the
/// sensors are assumed exact here).
fn subset_error(stack: &ThermalStack, tier: usize, sites: &[DieSite]) -> f64 {
    let readings: Vec<Celsius> = sites
        .iter()
        .map(|s| {
            stack
                .temperature_at(tier, s.x, s.y)
                .expect("tier validated by caller")
        })
        .collect();
    let est = FieldEstimator::new(sites.to_vec(), readings).expect("non-empty");
    est.error_against(stack, tier).expect("tier validated").0
}

/// Greedily selects `k` sensor sites from `candidates`, minimizing at each
/// step the worst-case (over `training` fields) max reconstruction error on
/// `tier`. Returns indices into `candidates`.
///
/// # Errors
///
/// Returns [`SensorError::InvalidConfig`] if `candidates` is empty,
/// `k == 0`, `k > candidates.len()`, or `tier` is out of range for any
/// training stack.
pub fn place_sensors_greedy(
    training: &[&ThermalStack],
    tier: usize,
    candidates: &[DieSite],
    k: usize,
) -> Result<Vec<usize>, SensorError> {
    if candidates.is_empty() || k == 0 || k > candidates.len() || training.is_empty() {
        return Err(SensorError::InvalidConfig {
            name: "placement inputs",
            value: k as f64,
        });
    }
    for stack in training {
        if tier >= stack.tiers() {
            return Err(SensorError::InvalidConfig {
                name: "tier",
                value: tier as f64,
            });
        }
    }

    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut sites: Vec<DieSite> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            if chosen.contains(&ci) {
                continue;
            }
            sites.push(*cand);
            let worst = training
                .iter()
                .map(|s| subset_error(s, tier, &sites))
                .fold(0.0f64, f64::max);
            sites.pop();
            if best.is_none_or(|(_, b)| worst < b) {
                best = Some((ci, worst));
            }
        }
        let (ci, _) = best.expect("candidates remain");
        chosen.push(ci);
        sites.push(candidates[ci]);
    }
    Ok(chosen)
}

/// Improves a placement by local swaps: repeatedly replaces one chosen site
/// with one unchosen candidate whenever that lowers the worst-case (over
/// `training`) max reconstruction error, until no single swap helps (or
/// `max_passes` is hit). Returns the refined indices.
///
/// Greedy selection is myopic; a swap pass typically recovers most of the
/// gap to the exhaustive optimum at `O(k·|candidates|)` per pass.
///
/// # Errors
///
/// Same input conditions as [`place_sensors_greedy`].
pub fn refine_placement_swaps(
    training: &[&ThermalStack],
    tier: usize,
    candidates: &[DieSite],
    chosen: &[usize],
    max_passes: usize,
) -> Result<Vec<usize>, SensorError> {
    if chosen.is_empty() || chosen.iter().any(|&i| i >= candidates.len()) {
        return Err(SensorError::InvalidConfig {
            name: "chosen placement",
            value: chosen.len() as f64,
        });
    }
    let worst = |idx: &[usize]| {
        let sites: Vec<DieSite> = idx.iter().map(|&i| candidates[i]).collect();
        training
            .iter()
            .map(|s| subset_error(s, tier, &sites))
            .fold(0.0f64, f64::max)
    };
    let mut current: Vec<usize> = chosen.to_vec();
    let mut current_err = worst(&current);
    for _ in 0..max_passes {
        let mut improved = false;
        for slot in 0..current.len() {
            for (ci, _) in candidates.iter().enumerate() {
                if current.contains(&ci) {
                    continue;
                }
                let old = current[slot];
                current[slot] = ci;
                let e = worst(&current);
                if e + 1e-12 < current_err {
                    current_err = e;
                    improved = true;
                } else {
                    current[slot] = old;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::units::Watt;
    use ptsim_thermal::power::PowerMap;
    use ptsim_thermal::solve::{solve_steady_state, SolveOptions};
    use ptsim_thermal::stack::StackConfig;

    fn hotspot_stack(cx: f64, cy: f64) -> ThermalStack {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let mut p = PowerMap::zero(16, 16).unwrap();
        p.add_hotspot(cx, cy, 0.12, Watt(2.0));
        s.set_power(0, p).unwrap();
        solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        s
    }

    #[test]
    fn estimator_validates_inputs() {
        assert!(FieldEstimator::new(vec![], vec![]).is_err());
        assert!(FieldEstimator::new(vec![DieSite::CENTER], vec![]).is_err());
        assert!(FieldEstimator::new(vec![DieSite::CENTER], vec![Celsius(30.0)]).is_ok());
    }

    #[test]
    fn estimate_exact_at_a_sensor_site() {
        let est = FieldEstimator::new(
            vec![DieSite::new(0.2, 0.2), DieSite::new(0.8, 0.8)],
            vec![Celsius(30.0), Celsius(50.0)],
        )
        .unwrap();
        assert_eq!(est.estimate(0.2, 0.2).0, 30.0);
        assert_eq!(est.estimate(0.8, 0.8).0, 50.0);
    }

    #[test]
    fn estimate_interpolates_between_sites() {
        let est = FieldEstimator::new(
            vec![DieSite::new(0.0, 0.5), DieSite::new(1.0, 0.5)],
            vec![Celsius(30.0), Celsius(50.0)],
        )
        .unwrap();
        let mid = est.estimate(0.5, 0.5).0;
        assert!((mid - 40.0).abs() < 1e-9, "midpoint should average, {mid}");
        let near_left = est.estimate(0.1, 0.5).0;
        assert!(near_left < 35.0);
    }

    #[test]
    fn more_sensors_reduce_reconstruction_error() {
        let stack = hotspot_stack(0.3, 0.7);
        let few = {
            let sites = vec![DieSite::new(0.5, 0.5)];
            let readings: Vec<Celsius> = sites
                .iter()
                .map(|s| stack.temperature_at(0, s.x, s.y).unwrap())
                .collect();
            FieldEstimator::new(sites, readings)
                .unwrap()
                .error_against(&stack, 0)
                .unwrap()
                .0
        };
        let many = {
            let sites: Vec<DieSite> = (0..3)
                .flat_map(|i| {
                    (0..3)
                        .map(move |j| DieSite::new(0.17 + 0.33 * i as f64, 0.17 + 0.33 * j as f64))
                })
                .collect();
            let readings: Vec<Celsius> = sites
                .iter()
                .map(|s| stack.temperature_at(0, s.x, s.y).unwrap())
                .collect();
            FieldEstimator::new(sites, readings)
                .unwrap()
                .error_against(&stack, 0)
                .unwrap()
                .0
        };
        assert!(many < few, "3x3 grid {many:.3} vs single {few:.3}");
    }

    #[test]
    fn greedy_placement_beats_naive_corner_choice() {
        let fields = [hotspot_stack(0.3, 0.7), hotspot_stack(0.7, 0.3)];
        let refs: Vec<&ThermalStack> = fields.iter().collect();
        // Candidate grid.
        let candidates: Vec<DieSite> = (0..4)
            .flat_map(|i| {
                (0..4).map(move |j| DieSite::new(0.125 + 0.25 * i as f64, 0.125 + 0.25 * j as f64))
            })
            .collect();
        let chosen = place_sensors_greedy(&refs, 0, &candidates, 3).unwrap();
        assert_eq!(chosen.len(), 3);
        let greedy_sites: Vec<DieSite> = chosen.iter().map(|&i| candidates[i]).collect();
        let naive_sites = vec![
            DieSite::new(0.125, 0.125),
            DieSite::new(0.125, 0.375),
            DieSite::new(0.375, 0.125),
        ];
        let worst = |sites: &[DieSite]| {
            refs.iter()
                .map(|s| subset_error(s, 0, sites))
                .fold(0.0f64, f64::max)
        };
        assert!(
            worst(&greedy_sites) <= worst(&naive_sites),
            "greedy {:.3} vs naive corner cluster {:.3}",
            worst(&greedy_sites),
            worst(&naive_sites)
        );
    }

    #[test]
    fn swap_refinement_never_hurts() {
        let fields = [hotspot_stack(0.3, 0.7), hotspot_stack(0.7, 0.3)];
        let refs: Vec<&ThermalStack> = fields.iter().collect();
        let candidates: Vec<DieSite> = (0..4)
            .flat_map(|i| {
                (0..4).map(move |j| DieSite::new(0.125 + 0.25 * i as f64, 0.125 + 0.25 * j as f64))
            })
            .collect();
        let worst = |idx: &[usize]| {
            let sites: Vec<DieSite> = idx.iter().map(|&i| candidates[i]).collect();
            refs.iter()
                .map(|s| subset_error(s, 0, &sites))
                .fold(0.0f64, f64::max)
        };
        let greedy = place_sensors_greedy(&refs, 0, &candidates, 3).unwrap();
        let refined = refine_placement_swaps(&refs, 0, &candidates, &greedy, 10).unwrap();
        assert!(worst(&refined) <= worst(&greedy) + 1e-12);
        // Refinement from a deliberately bad start must improve it.
        let bad = vec![0usize, 1, 2];
        let fixed = refine_placement_swaps(&refs, 0, &candidates, &bad, 10).unwrap();
        assert!(worst(&fixed) <= worst(&bad));
    }

    #[test]
    fn swap_refinement_validates_inputs() {
        let stack = hotspot_stack(0.5, 0.5);
        let refs = [&stack];
        let cands = vec![DieSite::CENTER, DieSite::new(0.2, 0.2)];
        assert!(refine_placement_swaps(&refs, 0, &cands, &[], 3).is_err());
        assert!(refine_placement_swaps(&refs, 0, &cands, &[7], 3).is_err());
        assert!(refine_placement_swaps(&refs, 0, &cands, &[0], 3).is_ok());
    }

    #[test]
    fn placement_validates_inputs() {
        let stack = hotspot_stack(0.5, 0.5);
        let refs = [&stack];
        let cands = vec![DieSite::CENTER];
        assert!(place_sensors_greedy(&refs, 0, &[], 1).is_err());
        assert!(place_sensors_greedy(&refs, 0, &cands, 0).is_err());
        assert!(place_sensors_greedy(&refs, 0, &cands, 2).is_err());
        assert!(place_sensors_greedy(&refs, 5, &cands, 1).is_err());
        assert!(place_sensors_greedy(&refs, 0, &cands, 1).is_ok());
    }
}
