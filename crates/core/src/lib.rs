//! # ptsim-core
//!
//! Reproduction of the SOCC 2012 **on-chip self-calibrated
//! process–temperature sensor for TSV 3D integration** (Chiang et al.).
//!
//! A [`sensor::PtSensor`] owns a [`bank::RoBank`] of ring oscillators — two
//! process-sensitive (PSRO-N / PSRO-P, threshold-skewed) and one
//! temperature-sensitive (TSRO, near-threshold). At boot it
//! **self-calibrates**: each PSRO is measured at two supply voltages and a
//! 4×4 Newton decoupling ([`newton`]) extracts the die's
//! `(ΔVtn, ΔVtp, µn, µp)`, stored in Q-format registers
//! ([`calib::Calibration`]). Every subsequent conversion solves temperature
//! from the TSRO and re-tracks the threshold shifts, charging energy to a
//! per-component ledger.
//!
//! ## Example
//!
//! ```
//! use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
//! use ptsim_device::process::Technology;
//! use ptsim_device::units::Celsius;
//! use ptsim_mc::die::{DieSample, DieSite};
//!
//! # fn main() -> Result<(), ptsim_core::error::SensorError> {
//! let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm())?;
//! let die = DieSample::nominal();
//! let mut rng = ptsim_rng::Pcg64::seed_from_u64(42);
//!
//! // Boot-time self-calibration at the assumed 25 °C ambient.
//! sensor.calibrate(&SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)), &mut rng)?;
//!
//! // Later: the die heats to 73 °C.
//! let reading = sensor.read(&SensorInputs::new(&die, DieSite::CENTER, Celsius(73.0)), &mut rng)?;
//! assert!((reading.temperature.0 - 73.0).abs() < 1.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod bank;
pub mod calib;
pub mod dtm;
pub mod error;
pub mod fieldest;
pub mod golden;
pub mod health;
pub mod metrics;
pub mod monitor;
pub mod newton;
pub mod pipeline;
pub mod sensor;
pub mod vsense;

pub use bank::{BankCache, BankSpec, RoBank, RoClass};
pub use calib::Calibration;
pub use dtm::{
    hottest_site, run_dtm_loop, DtmConfig, DtmController, DtmOutcome, DtmSensing, DtmStepRecord,
    DvfsTable, NominalSensing, OperatingPoint, SensingMode, WorkloadTrace,
};
pub use error::SensorError;
pub use fieldest::{place_sensors_greedy, refine_placement_swaps, FieldEstimator};
pub use golden::{CharacterizationSpace, GoldenModel};
pub use health::{Health, HealthEvent, HealthStatus};
pub use metrics::{PipelineMetrics, Stage};
pub use monitor::{SensorNode, StackMonitor, TierReading};
pub use pipeline::{BatchPlan, Conversion, DieConversion, Scratch};
pub use sensor::{CalibrationOutcome, HardeningSpec, PtSensor, Reading, SensorInputs, SensorSpec};
pub use vsense::VddMonitor;
