//! Stack-level monitoring: sensors embedded in a TSV 3D stack.
//!
//! This is the paper's application scenario: one PT sensor per tier of a
//! TSV-stacked 3D-IC, reading intra-die temperature and threshold drift
//! while the stack runs a workload. The monitor wires together the thermal
//! simulator (ground-truth temperature fields), the TSV topology
//! (stress-induced threshold shifts at each sensor site), the Monte-Carlo
//! die population (per-tier process realizations), and the sensors.

use crate::error::SensorError;
use crate::sensor::{PtSensor, Reading, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Micron, Volt};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_rng::Rng;
use ptsim_thermal::stack::ThermalStack;
use ptsim_tsv::topology::StackTopology;

/// A sensor placed on one tier of a 3D stack.
#[derive(Debug, Clone)]
pub struct SensorNode {
    /// Tier index (0 = bottom).
    pub tier: usize,
    /// Location on the tier in normalized coordinates.
    pub site: DieSite,
    sensor: PtSensor,
}

impl SensorNode {
    /// The underlying sensor.
    #[must_use]
    pub fn sensor(&self) -> &PtSensor {
        &self.sensor
    }
}

/// A monitored 3D stack: topology + per-tier dies + per-tier sensors.
#[derive(Debug, Clone)]
pub struct StackMonitor {
    topology: StackTopology,
    dies: Vec<DieSample>,
    nodes: Vec<SensorNode>,
}

/// One tier's monitoring result at an instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TierReading {
    /// Tier index.
    pub tier: usize,
    /// Ground-truth temperature at the sensor site.
    pub true_temp: Celsius,
    /// The sensor's conversion result.
    pub reading: Reading,
    /// Ground-truth stress-induced `(ΔVtn, ΔVtp)` at the sensor site.
    pub true_stress_shift: (Volt, Volt),
    /// Threshold drift since calibration
    /// `(reading − stored calibration value)` — the sensor's view of shifts
    /// that appeared *after* boot, e.g. stress or thermal drift.
    pub vt_drift: (Volt, Volt),
}

impl TierReading {
    /// Temperature error (reported − truth).
    #[must_use]
    pub fn temp_error(&self) -> f64 {
        self.reading.temperature.0 - self.true_temp.0
    }
}

impl StackMonitor {
    /// Builds a monitor with one sensor per tier at `site`.
    ///
    /// `dies` supplies the per-tier process realizations and must have one
    /// entry per tier of the topology.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] if the die count does not match
    /// the tier count, and propagates sensor construction errors.
    pub fn new(
        topology: StackTopology,
        dies: Vec<DieSample>,
        site: DieSite,
        tech: &Technology,
        spec: SensorSpec,
    ) -> Result<Self, SensorError> {
        let tiers = topology.thermal_config().tiers;
        if dies.len() != tiers {
            return Err(SensorError::InvalidConfig {
                name: "dies (must equal tier count)",
                value: dies.len() as f64,
            });
        }
        let nodes = (0..tiers)
            .map(|tier| {
                Ok(SensorNode {
                    tier,
                    site,
                    sensor: PtSensor::new(tech.clone(), spec)?,
                })
            })
            .collect::<Result<Vec<_>, SensorError>>()?;
        Ok(StackMonitor {
            topology,
            dies,
            nodes,
        })
    }

    /// The stack topology.
    #[must_use]
    pub fn topology(&self) -> &StackTopology {
        &self.topology
    }

    /// Per-tier dies.
    #[must_use]
    pub fn dies(&self) -> &[DieSample] {
        &self.dies
    }

    /// Sensor nodes.
    #[must_use]
    pub fn nodes(&self) -> &[SensorNode] {
        &self.nodes
    }

    /// Builds the thermal network for this stack (TSV conductances applied).
    ///
    /// # Errors
    ///
    /// Propagates thermal construction errors.
    pub fn build_thermal(&self) -> Result<ThermalStack, ptsim_tsv::error::TsvError> {
        self.topology.build_thermal()
    }

    /// Site of a node in µm die coordinates.
    fn site_um(&self, node: &SensorNode) -> (Micron, Micron) {
        let cfg = self.topology.thermal_config();
        (
            Micron(node.site.x * cfg.die_width.0),
            Micron(node.site.y * cfg.die_height.0),
        )
    }

    /// The sensor inputs a node would see given a solved thermal state.
    ///
    /// # Errors
    ///
    /// Propagates temperature-query errors from the thermal stack.
    pub fn inputs_for<'a>(
        &'a self,
        node_index: usize,
        thermal: &ThermalStack,
    ) -> Result<SensorInputs<'a>, ptsim_thermal::error::ThermalError> {
        let node = &self.nodes[node_index];
        let t = thermal.temperature_at(node.tier, node.site.x, node.site.y)?;
        Ok(self.inputs_at(node_index, t))
    }

    /// The sensor inputs a node sees at an externally supplied site
    /// temperature — e.g. the lag-adjusted estimate a closed control loop
    /// attributes to a conversion that integrated over the previous
    /// sample period. Stress-induced threshold shifts are evaluated from
    /// the topology at that temperature.
    ///
    /// # Panics
    ///
    /// Panics if `node_index` is out of range.
    #[must_use]
    pub fn inputs_at(&self, node_index: usize, temp: Celsius) -> SensorInputs<'_> {
        let node = &self.nodes[node_index];
        let (x, y) = self.site_um(node);
        let (svtn, svtp) = self.topology.stress_vt_shift_at(node.tier, x, y, temp);
        SensorInputs::new(&self.dies[node.tier], node.site, temp).with_stress(svtn, svtp)
    }

    /// The inputs a node sees with the stack idle at ambient — the
    /// calibration condition [`StackMonitor::calibrate_all`] uses, exposed
    /// so external sensing stacks (e.g. the DTM loop's DVS-mode sensors)
    /// can boot under identical conditions.
    ///
    /// # Panics
    ///
    /// Panics if `node_index` is out of range.
    #[must_use]
    pub fn calibration_inputs(&self, node_index: usize) -> SensorInputs<'_> {
        self.inputs_at(node_index, self.topology.thermal_config().ambient)
    }

    /// Calibrates every sensor with the stack idle at ambient.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors from any node.
    pub fn calibrate_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<(), SensorError> {
        let ambient = self.topology.thermal_config().ambient;
        let cfg = self.topology.thermal_config().clone();
        for i in 0..self.nodes.len() {
            let node = &self.nodes[i];
            let (x, y) = (
                Micron(node.site.x * cfg.die_width.0),
                Micron(node.site.y * cfg.die_height.0),
            );
            let (svtn, svtp) = self.topology.stress_vt_shift_at(node.tier, x, y, ambient);
            let inputs = SensorInputs::new(&self.dies[node.tier], node.site, ambient)
                .with_stress(svtn, svtp);
            let node = &mut self.nodes[i];
            node.sensor.calibrate(&inputs, rng)?;
        }
        Ok(())
    }

    /// Reads every tier against a solved thermal state.
    ///
    /// # Errors
    ///
    /// Propagates sensor read errors; thermal query failures are reported as
    /// [`SensorError::InvalidConfig`] (they indicate a topology mismatch).
    pub fn read_all<R: Rng + ?Sized>(
        &self,
        thermal: &ThermalStack,
        rng: &mut R,
    ) -> Result<Vec<TierReading>, SensorError> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let inputs = self
                .inputs_for(i, thermal)
                .map_err(|_| SensorError::InvalidConfig {
                    name: "thermal stack tier mismatch",
                    value: node.tier as f64,
                })?;
            let reading = node.sensor.read(&inputs, rng)?;
            let cal = node
                .sensor
                .calibration()
                .ok_or(SensorError::NotCalibrated)?;
            let vt_drift = (reading.d_vtn - cal.d_vtn(), reading.d_vtp - cal.d_vtp());
            out.push(TierReading {
                tier: node.tier,
                true_temp: inputs.temp,
                reading,
                true_stress_shift: (inputs.extra_vtn, inputs.extra_vtp),
                vt_drift,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::units::Watt;
    use ptsim_mc::model::VariationModel;
    use ptsim_rng::Pcg64;
    use ptsim_thermal::power::PowerMap;
    use ptsim_thermal::solve::{solve_steady_state, SolveOptions};

    fn monitor() -> StackMonitor {
        let topo = StackTopology::reference_four_tier();
        let model = VariationModel::new(&Technology::n65());
        let mut rng = Pcg64::seed_from_u64(1234);
        let dies: Vec<DieSample> = (0..4)
            .map(|i| model.sample_die_with_id(&mut rng, i))
            .collect();
        StackMonitor::new(
            topo,
            dies,
            DieSite::new(0.25, 0.25),
            &Technology::n65(),
            SensorSpec::default_65nm(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_wrong_die_count() {
        let topo = StackTopology::reference_four_tier();
        let err = StackMonitor::new(
            topo,
            vec![DieSample::nominal(); 2],
            DieSite::CENTER,
            &Technology::n65(),
            SensorSpec::default_65nm(),
        )
        .unwrap_err();
        assert!(matches!(err, SensorError::InvalidConfig { .. }));
    }

    #[test]
    fn end_to_end_stack_monitoring() {
        let mut mon = monitor();
        let mut rng = Pcg64::seed_from_u64(5);
        mon.calibrate_all(&mut rng).unwrap();

        // Heat the stack: 1.5 W hotspot on tier 0.
        let mut thermal = mon.build_thermal().unwrap();
        let mut p = PowerMap::zero(16, 16).unwrap();
        p.add_hotspot(0.25, 0.25, 0.1, Watt(1.5));
        thermal.set_power(0, p).unwrap();
        solve_steady_state(&mut thermal, &SolveOptions::default()).unwrap();

        let readings = mon.read_all(&thermal, &mut rng).unwrap();
        assert_eq!(readings.len(), 4);
        for r in &readings {
            assert!(
                r.temp_error().abs() < 2.0,
                "tier {} error {:.2} °C",
                r.tier,
                r.temp_error()
            );
            assert!(r.true_temp.0 > 25.0, "stack should have heated");
        }
        // Tier 0 (hotspot, far from sink) runs hottest.
        assert!(readings[0].true_temp.0 > readings[3].true_temp.0);
    }

    #[test]
    fn stress_shift_nonzero_near_tsvs() {
        let mon = monitor();
        let thermal = {
            let mut t = mon.build_thermal().unwrap();
            solve_steady_state(&mut t, &SolveOptions::default()).unwrap();
            t
        };
        let inputs = mon.inputs_for(0, &thermal).unwrap();
        // The 8×8 central TSV array superposes a small but nonzero shift
        // even 1.25 mm off-centre.
        assert!(inputs.extra_vtn.0 > 0.0);
        assert!(inputs.extra_vtp.0 < 0.0);
    }

    #[test]
    fn accessors_consistent() {
        let mon = monitor();
        assert_eq!(mon.nodes().len(), 4);
        assert_eq!(mon.dies().len(), 4);
        assert_eq!(mon.nodes()[2].tier, 2);
        assert!(mon.nodes()[0].sensor().calibration().is_none());
        assert_eq!(mon.topology().thermal_config().tiers, 4);
    }
}
