//! Closed-loop dynamic thermal management: DVFS actuation driven by
//! sensor readings, with the sensor itself switching operating modes.
//!
//! This is the promoted, hardened form of the `dtm_loop` example and the
//! core of the R3 experiment family (ROADMAP item 2): a deterministic
//! synthetic workload trace drives a per-tier [`PowerMap`] through the
//! transient thermal solver; a [`DtmController`] observes only sensor
//! [`Reading`]s and throttles through a discrete [`DvfsTable`] with
//! hysteresis and per-step actuation latency; and the sensing stack itself
//! participates in the actuation — operating points at 0.25–0.5 V hand the
//! conversion over to the 2013 follow-up's dynamic-voltage-selection mode
//! (longer counting windows, lower conversion energy) through the
//! [`DtmSensing`] trait. `ptsim-baselines` provides the dual-mode
//! implementation; [`NominalSensing`] is the always-nominal policy.
//!
//! The loop itself ([`run_dtm_loop`]) charges the controller for what it
//! cannot see: conversions integrate the *previous* sample period (the
//! sensing-lag model attributes a window-weighted blend of the step's
//! start/end temperatures to the conversion), the decision acts on stale
//! information whenever the conversion window stretches, and actuations
//! land `actuation_latency_steps` after the decision.

use crate::error::SensorError;
use crate::monitor::StackMonitor;
use crate::sensor::{PtSensor, Reading, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Hertz, Joule, Seconds, Volt, Watt};
use ptsim_mc::die::DieSite;
use ptsim_rng::{Pcg64, Rng, RngCore};
use ptsim_thermal::error::ThermalError;
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{
    solve_steady_state, step_transient_with, SolveOptions, TransientScratch,
};
use ptsim_thermal::stack::ThermalStack;

/// One discrete voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core supply voltage.
    pub vdd: Volt,
    /// Clock frequency at this supply.
    pub freq: Hertz,
}

impl OperatingPoint {
    /// Dynamic-power scale of this point relative to `nominal`:
    /// `(f/f_nom) · (V/V_nom)²` — the classic CV²f model.
    #[must_use]
    pub fn power_scale(&self, nominal: &OperatingPoint) -> f64 {
        (self.freq.0 / nominal.freq.0) * (self.vdd.0 / nominal.vdd.0).powi(2)
    }
}

/// An ordered ladder of DVFS operating points, lowest first.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsTable {
    points: Vec<OperatingPoint>,
}

impl DvfsTable {
    /// Builds a table from `points`, which must be non-empty and strictly
    /// ascending in both voltage and frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for an empty, non-monotone,
    /// or non-finite ladder.
    pub fn new(points: Vec<OperatingPoint>) -> Result<Self, SensorError> {
        if points.is_empty() {
            return Err(SensorError::InvalidConfig {
                name: "dvfs points (empty)",
                value: 0.0,
            });
        }
        for p in &points {
            if !(p.vdd.0.is_finite() && p.vdd.0 > 0.0 && p.freq.0.is_finite() && p.freq.0 > 0.0) {
                return Err(SensorError::InvalidConfig {
                    name: "dvfs point",
                    value: p.vdd.0,
                });
            }
        }
        for w in points.windows(2) {
            if w[1].vdd.0 <= w[0].vdd.0 || w[1].freq.0 <= w[0].freq.0 {
                return Err(SensorError::InvalidConfig {
                    name: "dvfs points (must ascend)",
                    value: w[1].vdd.0,
                });
            }
        }
        Ok(DvfsTable { points })
    }

    /// The six-point ladder the R3 campaign uses. The four lowest points
    /// sit in the 2013 sensor's 0.25–0.5 V dynamic-voltage-selection
    /// range, so throttling one level past the big 1.0 → 0.8 V drop
    /// already moves the *sensor* into its low-energy operating mode.
    /// Power scales (CV²f, relative to nominal): 0.003, 0.015, 0.051,
    /// 0.10, 0.45, 1.0 — the wide 0.45 → 0.10 gap is deliberate, so a
    /// workload whose equilibrium falls inside it duty-cycles across the
    /// DVS boundary instead of parking just above it.
    ///
    /// # Panics
    ///
    /// Never — the built-in ladder is valid by construction.
    #[must_use]
    pub fn default_six_point() -> Self {
        DvfsTable::new(vec![
            OperatingPoint {
                vdd: Volt(0.25),
                freq: Hertz(50.0e6),
            },
            OperatingPoint {
                vdd: Volt(0.35),
                freq: Hertz(120.0e6),
            },
            OperatingPoint {
                vdd: Volt(0.45),
                freq: Hertz(250.0e6),
            },
            OperatingPoint {
                vdd: Volt(0.50),
                freq: Hertz(400.0e6),
            },
            OperatingPoint {
                vdd: Volt(0.80),
                freq: Hertz(700.0e6),
            },
            OperatingPoint {
                vdd: Volt(1.00),
                freq: Hertz(1.0e9),
            },
        ])
        .expect("built-in ladder is valid")
    }

    /// Number of operating points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the table has no points (never, post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The operating point at `level` (0 = lowest).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn point(&self, level: usize) -> OperatingPoint {
        self.points[level]
    }

    /// The nominal (highest) operating point.
    ///
    /// # Panics
    ///
    /// Never — tables are non-empty by construction.
    #[must_use]
    pub fn nominal(&self) -> OperatingPoint {
        *self.points.last().expect("non-empty")
    }

    /// Dynamic-power scale of `level` relative to the nominal point.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn power_scale(&self, level: usize) -> f64 {
        self.points[level].power_scale(&self.nominal())
    }
}

impl Default for DvfsTable {
    fn default() -> Self {
        DvfsTable::default_six_point()
    }
}

/// Thermal limits and timing of the DTM control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmConfig {
    /// Reported temperature above which the controller throttles down.
    pub t_limit: Celsius,
    /// Reported temperature below which the controller steps back up.
    /// Must be below `t_limit` — the hysteresis band between them holds
    /// the current level.
    pub t_release: Celsius,
    /// Steps between a throttle decision and the operating point actually
    /// changing (PLL relock + rail settle, in sample periods). `0` applies
    /// decisions instantly.
    pub actuation_latency_steps: usize,
    /// Control-loop sample period (one `step_transient` advance per
    /// decision).
    pub sample_period: Seconds,
    /// Reported excess beyond `t_limit` that escalates a throttle to an
    /// emergency two-level drop, °C. The emergency path models a hardware
    /// thermal trip: it applies in the same step, bypassing
    /// `actuation_latency_steps`.
    pub emergency_margin: f64,
    /// Minimum steps after an actuation before the controller will step
    /// *up* again — patience for the plant's thermal response, so the
    /// ascent cannot outrun the physics and relight the overshoot.
    /// Descents are never delayed by this.
    pub up_patience_steps: usize,
}

impl Default for DtmConfig {
    fn default() -> Self {
        DtmConfig {
            t_limit: Celsius(45.0),
            t_release: Celsius(42.0),
            actuation_latency_steps: 1,
            sample_period: Seconds(0.002),
            emergency_margin: 2.0,
            up_patience_steps: 5,
        }
    }
}

/// Hysteretic DVFS controller: one step down the ladder when the hottest
/// *reported* temperature exceeds the limit, one step up when it falls
/// below the release threshold, hold inside the band. At most one
/// actuation is in flight at a time; while one is pending no new decision
/// is taken.
#[derive(Debug, Clone, PartialEq)]
pub struct DtmController {
    table: DvfsTable,
    cfg: DtmConfig,
    level: usize,
    /// `(due_step, target_level)` of the in-flight actuation.
    pending: Option<(usize, usize)>,
    /// Step at which the last actuation landed (gates ascent patience).
    last_applied: Option<usize>,
    throttled_steps: usize,
    observed_steps: usize,
    actuations: usize,
    min_level: usize,
}

impl DtmController {
    /// Builds a controller starting at the nominal (highest) level.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] if the release threshold is
    /// not strictly below the limit or the sample period is not positive.
    pub fn new(table: DvfsTable, cfg: DtmConfig) -> Result<Self, SensorError> {
        let band_ok = cfg.t_release.0.is_finite()
            && cfg.t_limit.0.is_finite()
            && cfg.t_release.0 < cfg.t_limit.0;
        if !band_ok {
            return Err(SensorError::InvalidConfig {
                name: "t_release (must be < t_limit)",
                value: cfg.t_release.0,
            });
        }
        if !(cfg.sample_period.0.is_finite() && cfg.sample_period.0 > 0.0) {
            return Err(SensorError::InvalidConfig {
                name: "sample_period",
                value: cfg.sample_period.0,
            });
        }
        let level = table.len() - 1;
        Ok(DtmController {
            table,
            cfg,
            level,
            pending: None,
            last_applied: None,
            throttled_steps: 0,
            observed_steps: 0,
            actuations: 0,
            min_level: level,
        })
    }

    /// The configured loop parameters.
    #[must_use]
    pub fn config(&self) -> &DtmConfig {
        &self.cfg
    }

    /// The DVFS ladder.
    #[must_use]
    pub fn table(&self) -> &DvfsTable {
        &self.table
    }

    /// Current ladder level (0 = deepest throttle).
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Deepest level reached so far.
    #[must_use]
    pub fn min_level(&self) -> usize {
        self.min_level
    }

    /// The operating point currently applied.
    #[must_use]
    pub fn operating_point(&self) -> OperatingPoint {
        self.table.point(self.level)
    }

    /// Dynamic-power scale of the current level relative to nominal.
    #[must_use]
    pub fn power_scale(&self) -> f64 {
        self.table.power_scale(self.level)
    }

    /// Number of actuations applied so far.
    #[must_use]
    pub fn actuations(&self) -> usize {
        self.actuations
    }

    /// Fraction of observed steps spent below the nominal level.
    #[must_use]
    pub fn throttle_duty(&self) -> f64 {
        if self.observed_steps == 0 {
            0.0
        } else {
            self.throttled_steps as f64 / self.observed_steps as f64
        }
    }

    /// Feeds one control-loop sample: applies any actuation that has come
    /// due at `step`, then (if none is pending) takes a new hysteretic
    /// decision on `hottest_reported` — one level down above the limit,
    /// one level up below the release threshold once the ascent patience
    /// has elapsed, hold inside the band. When the excess passes the
    /// emergency margin the drop is two levels and lands *immediately*,
    /// modelling a hardware thermal-trip path that bypasses the normal
    /// actuation latency (PLL relock / scheduler handshake). Returns the
    /// newly applied operating point when one landed this step — the
    /// caller must propagate it to the plant and the sensing stack.
    pub fn observe(&mut self, step: usize, hottest_reported: Celsius) -> Option<OperatingPoint> {
        self.observed_steps += 1;
        let mut applied = false;
        if let Some((due, target)) = self.pending {
            if step >= due {
                self.level = target;
                self.min_level = self.min_level.min(target);
                self.pending = None;
                self.actuations += 1;
                self.last_applied = Some(step);
                applied = true;
            }
        }
        let hot = hottest_reported.0;
        let emergency = hot > self.cfg.t_limit.0 + self.cfg.emergency_margin;
        if emergency && self.level > 0 {
            // Thermal trip: clamp two levels now, cancelling any gentler
            // pending move.
            let t = self.level.saturating_sub(2);
            self.level = t;
            self.min_level = self.min_level.min(t);
            self.pending = None;
            self.actuations += 1;
            self.last_applied = Some(step);
            applied = true;
        } else if self.pending.is_none() {
            let settled = self
                .last_applied
                .is_none_or(|s| step - s >= self.cfg.up_patience_steps);
            let target = if hot > self.cfg.t_limit.0 && self.level > 0 {
                Some(self.level - 1)
            } else if hot < self.cfg.t_release.0 && self.level + 1 < self.table.len() && settled {
                Some(self.level + 1)
            } else {
                None
            };
            if let Some(t) = target {
                if self.cfg.actuation_latency_steps == 0 {
                    self.level = t;
                    self.min_level = self.min_level.min(t);
                    self.actuations += 1;
                    self.last_applied = Some(step);
                    applied = true;
                } else {
                    self.pending = Some((step + self.cfg.actuation_latency_steps, t));
                }
            }
        }
        if self.level + 1 < self.table.len() {
            self.throttled_steps += 1;
        }
        applied.then(|| self.operating_point())
    }
}

/// Phase shapes of the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    /// Near-zero background demand.
    Idle,
    /// Linear climb from idle to the phase intensity.
    Ramp,
    /// Sustained demand at the phase intensity.
    Burst,
    /// Square wave alternating intensity and idle every few steps.
    Periodic,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Phase {
    kind: PhaseKind,
    steps: usize,
    intensity: f64,
}

/// Demand of the idle floor, as a fraction of full load.
const IDLE_DEMAND: f64 = 0.05;

/// A deterministic synthetic workload trace: a seeded sequence of
/// idle/ramp/burst/periodic phases plus a randomized floorplan (one
/// Gaussian hotspot and one deliberately thin rectangular block — thin
/// enough to slip between power-map cell centres, exercising the
/// snap-to-nearest-cell conservation path). The trace is a pure function
/// of its seed: `demand(step)` and `power_map(step, ...)` never consult an
/// RNG, so replays and cross-thread campaigns are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    phases: Vec<Phase>,
    total_steps: usize,
    /// Uniform background power at full demand and nominal V/f, watts.
    base_watts: f64,
    /// Hotspot power at full demand and nominal V/f, watts.
    hotspot_watts: f64,
    /// Thin-block power at full demand and nominal V/f, watts.
    block_watts: f64,
    hotspot: (f64, f64, f64),
    block: (f64, f64, f64, f64),
}

impl WorkloadTrace {
    /// Generates a trace of at least `min_steps` steps from `seed`.
    /// Demand beyond the generated phases wraps around (the trace is
    /// cyclic), so any horizon is valid.
    #[must_use]
    pub fn synth(seed: u64, min_steps: usize) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut phases = Vec::new();
        let mut total = 0usize;
        // Every trace opens with a ramp into a burst: the R3 campaign
        // grades throttle behaviour, so the loop must actually get hot.
        phases.push(Phase {
            kind: PhaseKind::Ramp,
            steps: rng.gen_range(6usize..10),
            intensity: rng.gen_range(0.85..1.0),
        });
        phases.push(Phase {
            kind: PhaseKind::Burst,
            steps: rng.gen_range(24usize..36),
            intensity: rng.gen_range(0.9..1.0),
        });
        for p in &phases {
            total += p.steps;
        }
        while total < min_steps.max(1) {
            let kind = match rng.gen_range(0..4u32) {
                0 => PhaseKind::Idle,
                1 => PhaseKind::Ramp,
                2 => PhaseKind::Burst,
                _ => PhaseKind::Periodic,
            };
            let phase = Phase {
                kind,
                steps: rng.gen_range(4usize..14),
                intensity: rng.gen_range(0.5..1.0),
            };
            total += phase.steps;
            phases.push(phase);
        }
        let hotspot = (
            rng.gen_range(0.25..0.75),
            rng.gen_range(0.25..0.75),
            rng.gen_range(0.06..0.12),
        );
        // A thin strip: height well below the 16-grid cell pitch (1/16),
        // so many draws miss every cell centre — the watt-conservation
        // fix is on the hot path, not just in unit tests.
        let bx = rng.gen_range(0.1..0.6);
        let by = rng.gen_range(0.1..0.85);
        let block = (
            bx,
            by,
            bx + rng.gen_range(0.2..0.35),
            by + rng.gen_range(0.01..0.05),
        );
        WorkloadTrace {
            phases,
            total_steps: total,
            base_watts: 0.6,
            // Hot enough that the nominal-point steady state sits well
            // above the 45 °C limit — the controller has real work to do.
            hotspot_watts: rng.gen_range(5.5..6.5),
            // Deliberately modest: the thin block exercises the power-map
            // snap-to-cell conservation path without out-heating the
            // hotspot the sensors guard.
            block_watts: rng.gen_range(0.3..0.6),
            hotspot,
            block,
        }
    }

    /// Steps in one full cycle of the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total_steps
    }

    /// `true` when the trace has no phases (never, post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_steps == 0
    }

    /// Normalized hotspot centre — the natural sensor placement for a
    /// monitor guarding this workload.
    #[must_use]
    pub fn hotspot_center(&self) -> (f64, f64) {
        (self.hotspot.0, self.hotspot.1)
    }

    /// The step with the highest demand in one cycle (first such step).
    #[must_use]
    pub fn peak_demand_step(&self) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::NEG_INFINITY;
        for s in 0..self.total_steps {
            let d = self.demand(s);
            if d > best_d {
                best_d = d;
                best = s;
            }
        }
        best
    }

    /// Workload demand at `step`, in `[0, 1]` (cyclic beyond the trace
    /// length).
    #[must_use]
    pub fn demand(&self, step: usize) -> f64 {
        let mut s = step % self.total_steps;
        for p in &self.phases {
            if s < p.steps {
                return match p.kind {
                    PhaseKind::Idle => IDLE_DEMAND,
                    PhaseKind::Burst => p.intensity,
                    PhaseKind::Ramp => {
                        IDLE_DEMAND
                            + (p.intensity - IDLE_DEMAND) * (s as f64 + 1.0) / p.steps as f64
                    }
                    PhaseKind::Periodic => {
                        if (s / 3).is_multiple_of(2) {
                            p.intensity
                        } else {
                            IDLE_DEMAND
                        }
                    }
                };
            }
            s -= p.steps;
        }
        IDLE_DEMAND
    }

    /// Total watts the workload dissipates at `step` under a DVFS
    /// power scale.
    #[must_use]
    pub fn total_watts(&self, step: usize, power_scale: f64) -> Watt {
        let d = self.demand(step);
        Watt((self.base_watts + d * (self.hotspot_watts + self.block_watts)) * power_scale)
    }

    /// Builds the tier power map for `step` at a DVFS `power_scale`
    /// (uniform background + hotspot + thin block, all scaled).
    ///
    /// # Errors
    ///
    /// Propagates power-map construction errors for a degenerate grid.
    pub fn power_map(
        &self,
        step: usize,
        nx: usize,
        ny: usize,
        power_scale: f64,
    ) -> Result<PowerMap, ThermalError> {
        let d = self.demand(step);
        let mut p = PowerMap::uniform(nx, ny, Watt(self.base_watts * power_scale))?;
        let (cx, cy, r) = self.hotspot;
        p.add_hotspot(cx, cy, r, Watt(self.hotspot_watts * d * power_scale));
        let (x0, y0, x1, y1) = self.block;
        p.add_block(x0, y0, x1, y1, Watt(self.block_watts * d * power_scale));
        Ok(p)
    }
}

/// Finds the workload tier's hottest cell under `trace` at peak demand
/// and nominal V/f — the principled sensor placement for a DTM monitor
/// (guard the floorplan's known worst spot, so the site temperature the
/// controller defends tracks the true grid peak instead of sitting in a
/// thermal shadow). `thermal` is used as scratch: its power map and
/// temperature field are overwritten; pass a throwaway stack.
///
/// # Errors
///
/// Surfaces thermal coupling failures (bad tier, degenerate grid, solver
/// divergence) as [`SensorError::InvalidConfig`].
pub fn hottest_site(
    thermal: &mut ThermalStack,
    trace: &WorkloadTrace,
    tier: usize,
) -> Result<DieSite, SensorError> {
    let (nx, ny) = (thermal.config().nx, thermal.config().ny);
    let map = trace
        .power_map(trace.peak_demand_step(), nx, ny, 1.0)
        .map_err(thermal_config_err)?;
    thermal.set_power(tier, map).map_err(thermal_config_err)?;
    solve_steady_state(thermal, &SolveOptions::default()).map_err(|_| {
        SensorError::InvalidConfig {
            name: "dtm placement solve",
            value: f64::NAN,
        }
    })?;
    let mut best = DieSite::new(0.5, 0.5);
    let mut best_t = f64::NEG_INFINITY;
    for iy in 0..ny {
        for ix in 0..nx {
            let x = (ix as f64 + 0.5) / nx as f64;
            let y = (iy as f64 + 0.5) / ny as f64;
            let t = thermal
                .temperature_at(tier, x, y)
                .map_err(thermal_config_err)?
                .0;
            if t > best_t {
                best_t = t;
                best = DieSite::new(x, y);
            }
        }
    }
    Ok(best)
}

/// Which conversion mode a [`DtmSensing`] stack is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensingMode {
    /// The 2012 sensor on its nominal always-on rail.
    Nominal,
    /// The 2013 follow-up's near-/sub-Vth dynamic-voltage-selection mode,
    /// riding the (throttled) core rail at 0.25–0.5 V.
    DynamicVoltageSelection,
}

/// A sensing stack the DTM loop can actuate along with the plant: it boots
/// (calibrates) once at ambient, follows DVFS rail moves, and converts
/// temperatures. Implementations decide how a rail move maps to an
/// operating mode — [`NominalSensing`] ignores the rail entirely, while
/// the dual-mode stack in `ptsim-baselines` hands low rails to the
/// `pvt2013` sensor.
pub trait DtmSensing {
    /// Boot-time calibration at ambient.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors.
    fn calibrate(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SensorError>;

    /// Follows a DVFS actuation to a new rail voltage, returning the mode
    /// now in effect.
    ///
    /// # Errors
    ///
    /// Propagates sensor reconfiguration errors.
    fn set_operating_point(&mut self, vdd: Volt) -> Result<SensingMode, SensorError>;

    /// The mode currently in effect.
    fn mode(&self) -> SensingMode;

    /// One temperature conversion.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    fn read(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<Reading, SensorError>;

    /// Gating window of one conversion in the present mode — the sensing
    /// lag the control loop inherits.
    fn conversion_window(&self) -> Seconds;
}

/// The nominal-only sensing policy: the 2012 PT sensor on its always-on
/// rail, indifferent to DVFS actuations. The R3 campaign's baseline arm.
#[derive(Debug, Clone)]
pub struct NominalSensing {
    sensor: PtSensor,
    spec: SensorSpec,
}

impl NominalSensing {
    /// Builds the sensor.
    ///
    /// # Errors
    ///
    /// Propagates sensor construction errors.
    pub fn new(tech: &Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        Ok(NominalSensing {
            sensor: PtSensor::new(tech.clone(), spec)?,
            spec,
        })
    }
}

impl DtmSensing for NominalSensing {
    fn calibrate(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SensorError> {
        self.sensor.calibrate(inputs, rng).map(|_| ())
    }

    fn set_operating_point(&mut self, _vdd: Volt) -> Result<SensingMode, SensorError> {
        Ok(SensingMode::Nominal)
    }

    fn mode(&self) -> SensingMode {
        SensingMode::Nominal
    }

    fn read(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<Reading, SensorError> {
        self.sensor.read(inputs, rng)
    }

    fn conversion_window(&self) -> Seconds {
        Seconds(self.spec.window_cycles as f64 / self.spec.ref_clock.0)
    }
}

/// One control-loop step of a [`run_dtm_loop`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct DtmStepRecord {
    /// Step index (1-based).
    pub step: usize,
    /// Workload demand this step, `[0, 1]`.
    pub demand: f64,
    /// Ladder level in effect while the plant integrated this step.
    pub level: usize,
    /// True hottest sensor-site temperature at the decision instant.
    pub true_hottest: Celsius,
    /// True grid-wide peak of the workload tier at the decision instant
    /// (what [`DtmOutcome::peak_true`] accumulates; recorded per step so
    /// graders can separate the cold-start capture transient from settled
    /// containment).
    pub true_peak: Celsius,
    /// Hottest reported temperature the controller acted on.
    pub reported_hottest: Celsius,
    /// Sensing mode of the hottest tier's conversion.
    pub mode: SensingMode,
}

/// Aggregate outcome of one closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct DtmOutcome {
    /// Steps executed.
    pub steps: usize,
    /// Peak *true* temperature over the whole workload tier grid.
    pub peak_true: Celsius,
    /// `max(0, peak_true − t_limit)` — how far the plant escaped the limit
    /// while the controller saw only readings.
    pub overshoot: f64,
    /// Fraction of steps spent below the nominal DVFS level.
    pub throttle_duty: f64,
    /// Worst `|reported − true|` at a decision instant, °C.
    pub worst_lag_error: f64,
    /// Mean `|reported − true|` over all conversions, °C.
    pub mean_lag_error: f64,
    /// Total sensing energy across every conversion of the run.
    pub sensing_energy: Joule,
    /// Fraction of conversions taken in DVS mode.
    pub dvs_read_fraction: f64,
    /// DVFS actuations applied.
    pub actuations: usize,
    /// Deepest ladder level reached.
    pub min_level: usize,
    /// Per-step records (decision-instant telemetry).
    pub records: Vec<DtmStepRecord>,
}

fn thermal_config_err(e: ThermalError) -> SensorError {
    let _ = e;
    SensorError::InvalidConfig {
        name: "dtm thermal coupling",
        value: f64::NAN,
    }
}

/// Runs the closed loop: per step, apply the workload power at the current
/// operating point, advance the plant by one sample period, convert every
/// tier through its sensing stack (with the sensing-lag model below), feed
/// the hottest reading to the controller, and propagate any actuation to
/// both the plant (power scale) and the sensing stacks (rail voltage).
///
/// **Sensing-lag model:** a conversion gates over `conversion_window()`
/// ending at the decision instant, so the temperature it sees is the
/// window-weighted blend `T_end − (w/Δt)·(T_end − T_start)` of the step's
/// endpoint temperatures (`w` clamped to the sample period). A 14 µs
/// nominal window is effectively instantaneous at a 2 ms period; the
/// 896 µs window of the 0.25 V DVS bin drags almost half the previous
/// step's transient into the reading.
///
/// The caller provides one sensing stack per monitor node, uncalibrated —
/// the loop boots them at ambient before the first step. `monitor`
/// supplies the per-tier dies/stress; `thermal` is consumed as the plant
/// state (pass a fresh ambient stack for a cold boot).
///
/// # Errors
///
/// Propagates sensor errors; thermal coupling failures (bad workload tier,
/// grid mismatch) surface as [`SensorError::InvalidConfig`].
#[allow(clippy::too_many_arguments)] // plant + controller + sensing + trace are distinct roles
pub fn run_dtm_loop<S: DtmSensing>(
    monitor: &StackMonitor,
    thermal: &mut ThermalStack,
    sensing: &mut [S],
    controller: &mut DtmController,
    trace: &WorkloadTrace,
    workload_tier: usize,
    steps: usize,
    rng: &mut dyn RngCore,
) -> Result<DtmOutcome, SensorError> {
    let nodes = monitor.nodes().len();
    if sensing.len() != nodes {
        return Err(SensorError::InvalidConfig {
            name: "sensing stacks (must equal node count)",
            value: sensing.len() as f64,
        });
    }
    let (nx, ny) = (thermal.config().nx, thermal.config().ny);
    let period = controller.config().sample_period;

    for (i, s) in sensing.iter_mut().enumerate() {
        s.calibrate(&monitor.calibration_inputs(i), rng)?;
        s.set_operating_point(controller.operating_point().vdd)?;
    }

    let mut scratch = TransientScratch::new();
    let mut t_start = vec![0.0f64; nodes];
    let mut records = Vec::with_capacity(steps);
    let mut peak_true = f64::NEG_INFINITY;
    let mut worst_lag = 0.0f64;
    let mut lag_sum = 0.0f64;
    let mut energy = 0.0f64;
    let mut conversions = 0usize;
    let mut dvs_reads = 0usize;

    for step in 1..=steps {
        let level = controller.level();
        let map = trace
            .power_map(step - 1, nx, ny, controller.power_scale())
            .map_err(thermal_config_err)?;
        thermal
            .set_power(workload_tier, map)
            .map_err(thermal_config_err)?;

        for (i, t) in t_start.iter_mut().enumerate() {
            let node = &monitor.nodes()[i];
            *t = thermal
                .temperature_at(node.tier, node.site.x, node.site.y)
                .map_err(thermal_config_err)?
                .0;
        }
        step_transient_with(thermal, period, &mut scratch);
        let step_peak = thermal
            .max_temperature(workload_tier)
            .map_err(thermal_config_err)?
            .0;
        peak_true = peak_true.max(step_peak);

        let mut true_hottest = f64::NEG_INFINITY;
        let mut reported_hottest = f64::NEG_INFINITY;
        let mut hottest_mode = SensingMode::Nominal;
        for (i, s) in sensing.iter().enumerate() {
            let node = &monitor.nodes()[i];
            let t_end = thermal
                .temperature_at(node.tier, node.site.x, node.site.y)
                .map_err(thermal_config_err)?
                .0;
            let window = s.conversion_window().0.clamp(0.0, period.0);
            let alpha = window / period.0;
            let t_seen = t_end - alpha * (t_end - t_start[i]);
            let inputs = monitor.inputs_at(i, Celsius(t_seen));
            let reading = s.read(&inputs, rng)?;
            let lag_err = (reading.temperature.0 - t_end).abs();
            worst_lag = worst_lag.max(lag_err);
            lag_sum += lag_err;
            energy += reading.energy_total().0;
            conversions += 1;
            if s.mode() == SensingMode::DynamicVoltageSelection {
                dvs_reads += 1;
            }
            true_hottest = true_hottest.max(t_end);
            if reading.temperature.0 > reported_hottest {
                reported_hottest = reading.temperature.0;
                hottest_mode = s.mode();
            }
        }

        if let Some(op) = controller.observe(step, Celsius(reported_hottest)) {
            for s in sensing.iter_mut() {
                s.set_operating_point(op.vdd)?;
            }
        }

        records.push(DtmStepRecord {
            step,
            demand: trace.demand(step - 1),
            level,
            true_hottest: Celsius(true_hottest),
            true_peak: Celsius(step_peak),
            reported_hottest: Celsius(reported_hottest),
            mode: hottest_mode,
        });
    }

    let t_limit = controller.config().t_limit.0;
    Ok(DtmOutcome {
        steps,
        peak_true: Celsius(peak_true),
        overshoot: (peak_true - t_limit).max(0.0),
        throttle_duty: controller.throttle_duty(),
        worst_lag_error: worst_lag,
        mean_lag_error: if conversions == 0 {
            0.0
        } else {
            lag_sum / conversions as f64
        },
        sensing_energy: Joule(energy),
        dvs_read_fraction: if conversions == 0 {
            0.0
        } else {
            dvs_reads as f64 / conversions as f64
        },
        actuations: controller.actuations(),
        min_level: controller.min_level(),
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> DtmController {
        DtmController::new(DvfsTable::default_six_point(), DtmConfig::default()).unwrap()
    }

    #[test]
    fn table_validates() {
        assert!(DvfsTable::new(vec![]).is_err());
        let descending = vec![
            OperatingPoint {
                vdd: Volt(1.0),
                freq: Hertz(1e9),
            },
            OperatingPoint {
                vdd: Volt(0.5),
                freq: Hertz(5e8),
            },
        ];
        assert!(DvfsTable::new(descending).is_err());
        let t = DvfsTable::default_six_point();
        assert_eq!(t.len(), 6);
        assert!((t.power_scale(t.len() - 1) - 1.0).abs() < 1e-12);
        // Power strictly drops as the ladder descends.
        for l in 0..t.len() - 1 {
            assert!(t.power_scale(l) < t.power_scale(l + 1));
        }
    }

    #[test]
    fn controller_rejects_inverted_band() {
        let cfg = DtmConfig {
            t_limit: Celsius(40.0),
            t_release: Celsius(45.0),
            ..DtmConfig::default()
        };
        assert!(DtmController::new(DvfsTable::default_six_point(), cfg).is_err());
    }

    #[test]
    fn hysteresis_band_holds_level() {
        let mut c = controller();
        // Between release (42) and limit (45): no decision ever fires.
        for step in 1..=20 {
            assert!(c.observe(step, Celsius(43.5)).is_none());
        }
        assert_eq!(c.level(), 5);
        assert_eq!(c.actuations(), 0);
        assert!((c.throttle_duty() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn actuation_latency_delays_the_step_down() {
        let mut c = controller();
        // 45.5 °C is over the limit but inside the emergency margin: a
        // single-level decision at step 1, latency 1 → applies at step 2.
        assert!(c.observe(1, Celsius(45.5)).is_none());
        assert_eq!(c.level(), 5, "not yet applied");
        let op = c.observe(2, Celsius(45.5)).expect("applies now");
        assert_eq!(c.level(), 4);
        assert_eq!(op, c.table().point(4));
    }

    #[test]
    fn emergency_margin_trips_two_levels_immediately() {
        let mut c = controller();
        // 50 °C exceeds limit + emergency margin (45 + 2): the thermal
        // trip bypasses the actuation latency and lands two levels down
        // in the same step.
        assert!(c.observe(1, Celsius(50.0)).is_some());
        assert_eq!(c.level(), 3);
        // Still hot: trips again next step.
        assert!(c.observe(2, Celsius(50.0)).is_some());
        assert_eq!(c.level(), 1);
    }

    #[test]
    fn zero_latency_applies_immediately() {
        let cfg = DtmConfig {
            actuation_latency_steps: 0,
            ..DtmConfig::default()
        };
        let mut c = DtmController::new(DvfsTable::default_six_point(), cfg).unwrap();
        // 50 °C is past the emergency margin: an immediate two-level drop.
        assert!(c.observe(1, Celsius(50.0)).is_some());
        assert_eq!(c.level(), 3);
    }

    #[test]
    fn sustained_overheat_descends_and_patience_gates_the_climb() {
        let mut c = controller();
        for step in 1..=20 {
            c.observe(step, Celsius(60.0));
        }
        assert_eq!(c.level(), 0, "pinned at the bottom of the ladder");
        assert_eq!(c.min_level(), 0);
        // Cooling below release climbs back up, but only one level per
        // `up_patience_steps` — the plant must settle between ascents.
        for step in 21..=30 {
            c.observe(step, Celsius(30.0));
        }
        assert!(
            c.level() < 5,
            "patience must slow the ascent (level {} after 10 cool steps)",
            c.level()
        );
        for step in 31..=60 {
            c.observe(step, Celsius(30.0));
        }
        assert_eq!(c.level(), 5);
        assert!(c.throttle_duty() > 0.3 && c.throttle_duty() < 1.0);
    }

    #[test]
    fn reported_not_true_temperature_drives_decisions() {
        let mut c = controller();
        // A wildly hot *true* plant is invisible if readings stay cool.
        for step in 1..=5 {
            assert!(c.observe(step, Celsius(44.0)).is_none());
        }
        assert_eq!(c.level(), 5);
    }

    #[test]
    fn trace_is_deterministic_and_bounded() {
        let a = WorkloadTrace::synth(42, 60);
        let b = WorkloadTrace::synth(42, 60);
        assert_eq!(a, b);
        assert!(a.len() >= 60);
        for step in 0..3 * a.len() {
            let d = a.demand(step);
            assert!((0.0..=1.0).contains(&d), "step {step}: demand {d}");
        }
        // Different seeds differ.
        assert_ne!(a, WorkloadTrace::synth(43, 60));
    }

    #[test]
    fn trace_opens_hot() {
        // The mandated ramp→burst opening must reach high demand early.
        let t = WorkloadTrace::synth(7, 40);
        let early_peak = (0..20).map(|s| t.demand(s)).fold(0.0f64, f64::max);
        assert!(early_peak > 0.85, "opening peak {early_peak}");
    }

    #[test]
    fn power_map_conserves_trace_watts() {
        // The thin block regularly misses every cell centre; the map total
        // must still match the trace's accounting exactly (the headline
        // PowerMap conservation fix, on its real consumer).
        for seed in 0..20 {
            let t = WorkloadTrace::synth(seed, 50);
            for step in [0, 7, 23] {
                for scale in [1.0, 0.144] {
                    let m = t.power_map(step, 16, 16, scale).unwrap();
                    let want = t.total_watts(step, scale).0;
                    assert!(
                        (m.total().0 - want).abs() < 1e-9 * want.max(1.0),
                        "seed {seed} step {step}: map {} vs trace {want}",
                        m.total().0
                    );
                }
            }
        }
    }

    #[test]
    fn nominal_sensing_window_is_microseconds() {
        let s = NominalSensing::new(&Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let w = s.conversion_window().0;
        assert!((w - 14e-6).abs() < 1e-9, "window {w}");
        assert_eq!(s.mode(), SensingMode::Nominal);
    }
}
