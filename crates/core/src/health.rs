//! Self-diagnosis state attached to every sensor result.
//!
//! The hardened controller never trusts a reading it cannot vouch for:
//! every plausibility rejection, replica disagreement, retry, solver
//! retune, and degradation leaves a [`HealthEvent`] in the result's
//! [`Health`] record, and the overall [`HealthStatus`] is the worst
//! severity among them. A fault that corrupts an output must therefore
//! either turn the reading into an error or leave the health record
//! non-nominal — silent data corruption is the one outcome the design
//! rules out.

use ptsim_device::units::Volt;

/// Overall quality of a sensor result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Everything behaved as designed on the first attempt.
    Nominal,
    /// A fault was detected and masked (vote, retry, retune); the reported
    /// values are full-accuracy but the hardware needs attention.
    Recovered,
    /// The sensor is running in a reduced mode (lost channel, ROM fallback,
    /// implausible drift); outputs carry reduced accuracy guarantees.
    Degraded,
}

/// One diagnosed anomaly during a calibration or conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum HealthEvent {
    /// A replica's measurement fell outside the design-time plausibility
    /// band for its oscillator/supply pair.
    ImplausibleReading {
        /// Channel display name.
        channel: &'static str,
        /// Replica index within the channel.
        replica: usize,
    },
    /// A replica's counter saturated even at the maximum prescale ratio.
    CounterSaturated {
        /// Channel display name.
        channel: &'static str,
        /// Replica index within the channel.
        replica: usize,
    },
    /// A plausible replica disagreed with the replica majority and was
    /// excluded from the vote.
    ReplicaOutvoted {
        /// Channel display name.
        channel: &'static str,
        /// Replica index within the channel.
        replica: usize,
    },
    /// The surviving replicas agree only loosely (relative spread above the
    /// hardening limit) — excess jitter or marginal supply.
    ReplicaSpread {
        /// Channel display name.
        channel: &'static str,
        /// Relative spread `(max − min) / median` of the voted replicas.
        spread_rel: f64,
    },
    /// A channel produced no trustworthy majority and was re-measured with
    /// a widened counting window.
    RetriedWindow {
        /// Channel display name.
        channel: &'static str,
        /// Window-scale factor used for the retry.
        window_scale: u64,
    },
    /// A retry produced a trustworthy value after the first attempt failed.
    Recovered {
        /// Channel display name.
        channel: &'static str,
    },
    /// A channel produced no trustworthy value even after every retry.
    ChannelLost {
        /// Channel display name.
        channel: &'static str,
    },
    /// The plain Newton solve failed and the solver was re-run with the
    /// robust (adaptive-damping) tuning.
    SolverRetuned {
        /// Which decoupling solve was retuned.
        what: &'static str,
    },
    /// Both solver tunings failed; the output came from a bisection against
    /// the characterized (ROM) response instead of the joint decoupling.
    RomFallback {
        /// Which decoupling solve fell back.
        what: &'static str,
    },
    /// A PSRO bank is lost: only temperature was solved, with the threshold
    /// shifts frozen at their calibration values.
    DegradedTemperatureOnly,
    /// The solved threshold drift exceeded the hardening plausibility limit
    /// — the process outputs cannot be trusted.
    ImplausibleDrift {
        /// Which threshold drifted (`"d_vtn"` / `"d_vtp"`).
        which: &'static str,
        /// Apparent drift relative to the stored calibration.
        drift: Volt,
    },
    /// The calibration-register parity scrub found corrupted registers and
    /// triggered a self-recalibration.
    ParityScrubbed {
        /// Bitmask of corrupted registers.
        registers: u8,
    },
}

impl HealthEvent {
    /// The severity this event implies on its own.
    #[must_use]
    pub fn severity(&self) -> HealthStatus {
        match self {
            HealthEvent::ImplausibleReading { .. }
            | HealthEvent::CounterSaturated { .. }
            | HealthEvent::ReplicaOutvoted { .. }
            | HealthEvent::ReplicaSpread { .. }
            | HealthEvent::RetriedWindow { .. }
            | HealthEvent::Recovered { .. }
            | HealthEvent::SolverRetuned { .. }
            | HealthEvent::ParityScrubbed { .. } => HealthStatus::Recovered,
            HealthEvent::ChannelLost { .. }
            | HealthEvent::RomFallback { .. }
            | HealthEvent::DegradedTemperatureOnly
            | HealthEvent::ImplausibleDrift { .. } => HealthStatus::Degraded,
        }
    }
}

/// The full self-diagnosis record of one calibration or conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Health {
    status: HealthStatus,
    events: Vec<HealthEvent>,
}

impl Health {
    /// A clean record: nominal, no events.
    #[must_use]
    pub fn nominal() -> Self {
        Health {
            status: HealthStatus::Nominal,
            events: Vec::new(),
        }
    }

    /// Records an event, escalating the overall status to the worst
    /// severity seen so far.
    pub fn record(&mut self, event: HealthEvent) {
        self.status = self.status.max(event.severity());
        self.events.push(event);
    }

    /// Overall status.
    #[must_use]
    pub fn status(&self) -> HealthStatus {
        self.status
    }

    /// Every diagnosed event, in occurrence order.
    #[must_use]
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// True if nothing anomalous was diagnosed.
    #[must_use]
    pub fn is_nominal(&self) -> bool {
        self.status == HealthStatus::Nominal && self.events.is_empty()
    }

    /// True if anything at all was diagnosed — the inverse of
    /// [`Health::is_nominal`]. A *silent* corruption is precisely a wrong
    /// reading for which this returns `false`.
    #[must_use]
    pub fn flagged(&self) -> bool {
        !self.is_nominal()
    }

    /// True if any recorded event matches the predicate.
    pub fn any(&self, pred: impl FnMut(&HealthEvent) -> bool) -> bool {
        self.events.iter().any(pred)
    }
}

impl Default for Health {
    fn default() -> Self {
        Health::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_record_is_clean() {
        let h = Health::nominal();
        assert!(h.is_nominal());
        assert!(!h.flagged());
        assert_eq!(h.status(), HealthStatus::Nominal);
        assert!(h.events().is_empty());
    }

    #[test]
    fn status_escalates_to_worst_event_and_stays() {
        let mut h = Health::nominal();
        h.record(HealthEvent::RetriedWindow {
            channel: "TSRO",
            window_scale: 4,
        });
        assert_eq!(h.status(), HealthStatus::Recovered);
        h.record(HealthEvent::ChannelLost { channel: "PSRO-N" });
        assert_eq!(h.status(), HealthStatus::Degraded);
        // A later mild event must not downgrade the status.
        h.record(HealthEvent::Recovered { channel: "TSRO" });
        assert_eq!(h.status(), HealthStatus::Degraded);
        assert_eq!(h.events().len(), 3);
        assert!(h.flagged());
    }

    #[test]
    fn severity_ordering_matches_design() {
        assert!(HealthStatus::Nominal < HealthStatus::Recovered);
        assert!(HealthStatus::Recovered < HealthStatus::Degraded);
        assert_eq!(
            HealthEvent::DegradedTemperatureOnly.severity(),
            HealthStatus::Degraded
        );
        assert_eq!(
            HealthEvent::ParityScrubbed { registers: 0b1 }.severity(),
            HealthStatus::Recovered
        );
    }

    #[test]
    fn any_finds_matching_events() {
        let mut h = Health::nominal();
        h.record(HealthEvent::ReplicaOutvoted {
            channel: "PSRO-P",
            replica: 1,
        });
        assert!(h.any(|e| matches!(e, HealthEvent::ReplicaOutvoted { replica: 1, .. })));
        assert!(!h.any(|e| matches!(e, HealthEvent::ChannelLost { .. })));
    }
}
