//! Design-time characterized ("golden") oscillator model.
//!
//! The analytic compact model in [`crate::bank`] plays the role of SPICE.
//! Real sensor hardware cannot evaluate SPICE on-chip: at design time each
//! oscillator is characterized across (ΔVtn, ΔVtp, µn, µp, T) and the
//! resulting **polynomial surfaces** are what the ROM/datapath evaluates.
//! This module builds those surfaces by least-squares fitting on a
//! characterization grid, so the sensor can run in a hardware-faithful mode
//! where model *fit* error is part of the error budget (ablation A1 wires
//! this in; see `tbl_ablation`).
//!
//! Each surface fits `ln f` in normalized coordinates with a total-degree-
//! bounded multivariate polynomial basis.

use crate::bank::{BankSpec, RoBank, RoClass};
use crate::error::SensorError;
use crate::newton::solve_linear;
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};

/// Normalization spans of the characterization space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizationSpace {
    /// Threshold-shift half-range, volts (surfaces valid over ±this).
    pub vt_span: f64,
    /// ln-mobility half-range (±this around 0).
    pub ln_mu_span: f64,
    /// Temperature range, °C.
    pub temp_range: (f64, f64),
    /// Grid points per axis.
    pub points_per_axis: usize,
    /// Total polynomial degree of the fitted surfaces.
    pub degree: usize,
}

impl Default for CharacterizationSpace {
    fn default() -> Self {
        CharacterizationSpace {
            vt_span: 0.060,
            ln_mu_span: 0.25,
            temp_range: (-25.0, 105.0),
            points_per_axis: 6,
            degree: 5,
        }
    }
}

/// Multi-indices of total degree ≤ `degree` over `dims` variables.
fn multi_indices(dims: usize, degree: usize) -> Vec<Vec<usize>> {
    fn rec(dims: usize, degree: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if dims == 0 {
            out.push(prefix.clone());
            return;
        }
        for d in 0..=degree {
            prefix.push(d);
            rec(dims - 1, degree - d, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(dims, degree, &mut Vec::new(), &mut out);
    out
}

fn eval_basis(indices: &[Vec<usize>], x: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for mi in indices {
        let mut term = 1.0;
        for (p, xi) in mi.iter().zip(x) {
            term *= xi.powi(*p as i32);
        }
        out.push(term);
    }
}

/// One fitted `ln f` surface.
#[derive(Debug, Clone, PartialEq)]
struct Surface {
    class: RoClass,
    vdd: Volt,
    coeffs: Vec<f64>,
    fit_rms: f64,
    fit_max: f64,
}

/// The characterized model: one surface per (oscillator, supply) pair the
/// sensor measures.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenModel {
    space: CharacterizationSpace,
    indices: Vec<Vec<usize>>,
    surfaces: Vec<Surface>,
}

impl GoldenModel {
    /// Characterizes the bank: sweeps the 5-axis grid, evaluates the
    /// analytic model (the "SPICE" stand-in), and least-squares fits each
    /// surface.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError`] if the bank cannot be built or the normal
    /// equations are singular (degenerate grid).
    pub fn characterize(
        tech: &Technology,
        bank_spec: BankSpec,
        space: CharacterizationSpace,
    ) -> Result<Self, SensorError> {
        let bank = RoBank::new(tech, bank_spec)?;
        let plan = [
            (RoClass::PsroN, bank_spec.vdd_high),
            (RoClass::PsroN, bank_spec.vdd_low),
            (RoClass::PsroP, bank_spec.vdd_high),
            (RoClass::PsroP, bank_spec.vdd_low),
            (RoClass::Tsro, bank_spec.vdd_tsro),
        ];
        let indices = multi_indices(5, space.degree);
        let n_coef = indices.len();
        let p = space.points_per_axis.max(2);
        let axis = |i: usize| -1.0 + 2.0 * i as f64 / (p - 1) as f64; // [-1,1]

        let mut surfaces = Vec::with_capacity(plan.len());
        for (class, vdd) in plan {
            // Accumulate normal equations AᵀA x = Aᵀb over the grid.
            let mut ata = vec![0.0; n_coef * n_coef];
            let mut atb = vec![0.0; n_coef];
            let mut basis = Vec::with_capacity(n_coef);
            let mut samples: Vec<(Vec<f64>, f64)> = Vec::new();
            for i0 in 0..p {
                for i1 in 0..p {
                    for i2 in 0..p {
                        for i3 in 0..p {
                            for i4 in 0..p {
                                let x = [axis(i0), axis(i1), axis(i2), axis(i3), axis(i4)];
                                let env = space.denormalize(&x);
                                let lnf = bank.frequency(tech, class, vdd, &env).0.ln();
                                eval_basis(&indices, &x, &mut basis);
                                for r in 0..n_coef {
                                    for c in 0..n_coef {
                                        ata[r * n_coef + c] += basis[r] * basis[c];
                                    }
                                    atb[r] += basis[r] * lnf;
                                }
                                samples.push((x.to_vec(), lnf));
                            }
                        }
                    }
                }
            }
            solve_linear(&mut ata, &mut atb, n_coef, "golden-model fit")?;
            let coeffs = atb;

            // Fit-quality bookkeeping.
            let mut max_err: f64 = 0.0;
            let mut sum_sq = 0.0;
            for (x, lnf) in &samples {
                eval_basis(&indices, x, &mut basis);
                let pred: f64 = basis.iter().zip(&coeffs).map(|(b, c)| b * c).sum();
                let e = pred - lnf;
                max_err = max_err.max(e.abs());
                sum_sq += e * e;
            }
            surfaces.push(Surface {
                class,
                vdd,
                coeffs,
                fit_rms: (sum_sq / samples.len() as f64).sqrt(),
                fit_max: max_err,
            });
        }
        Ok(GoldenModel {
            space,
            indices,
            surfaces,
        })
    }

    /// Characterization space.
    #[must_use]
    pub fn space(&self) -> &CharacterizationSpace {
        &self.space
    }

    /// Worst ln-frequency fit error across all surfaces (on the training
    /// grid).
    #[must_use]
    pub fn worst_fit_error(&self) -> f64 {
        self.surfaces.iter().map(|s| s.fit_max).fold(0.0, f64::max)
    }

    /// Predicted `ln f` for an oscillator/supply pair under a hypothesized
    /// process/temperature state.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] if the (class, vdd) pair was
    /// not characterized.
    pub fn ln_frequency(
        &self,
        class: RoClass,
        vdd: Volt,
        env: &CmosEnv,
    ) -> Result<f64, SensorError> {
        let surf = self
            .surfaces
            .iter()
            .find(|s| s.class == class && (s.vdd.0 - vdd.0).abs() < 1e-9)
            .ok_or(SensorError::InvalidConfig {
                name: "uncharacterized (class, vdd) pair",
                value: vdd.0,
            })?;
        let x = self.space.normalize(env);
        let mut basis = Vec::with_capacity(self.indices.len());
        eval_basis(&self.indices, &x, &mut basis);
        Ok(basis.iter().zip(&surf.coeffs).map(|(b, c)| b * c).sum())
    }
}

impl CharacterizationSpace {
    /// The temperature axis is parameterized linearly in **inverse absolute
    /// temperature**: near-threshold ring delay is exponential in
    /// `Vt/(n·kT/q) ∝ 1/T`, so this substitution makes the fitted surfaces
    /// nearly polynomial and cuts the fit error by an order of magnitude
    /// compared with a linear-in-°C axis.
    fn inv_kelvin_bounds(&self) -> (f64, f64) {
        let (t0, t1) = self.temp_range;
        // Note: hotter temperature = smaller 1/T; keep (lo, hi) ordered.
        (
            1.0 / Celsius(t1).to_kelvin().0,
            1.0 / Celsius(t0).to_kelvin().0,
        )
    }

    /// Maps normalized grid coordinates `[-1,1]⁵` to a model environment.
    fn denormalize(&self, x: &[f64]) -> CmosEnv {
        let (u0, u1) = self.inv_kelvin_bounds();
        let u = u0 + (x[4] + 1.0) / 2.0 * (u1 - u0);
        CmosEnv {
            temp: ptsim_device::units::Kelvin(1.0 / u).to_celsius(),
            d_vtn: Volt(x[0] * self.vt_span),
            d_vtp: Volt(x[1] * self.vt_span),
            mu_n: (x[2] * self.ln_mu_span).exp(),
            mu_p: (x[3] * self.ln_mu_span).exp(),
        }
    }

    /// Maps a model environment into normalized coordinates (clamped to the
    /// characterized box).
    fn normalize(&self, env: &CmosEnv) -> [f64; 5] {
        // Allow 10% extrapolation beyond the characterized box so the
        // decoupling solver's finite-difference Jacobian never flattens to
        // zero at the box edge (polynomials extrapolate smoothly over such
        // a short distance).
        let (u0, u1) = self.inv_kelvin_bounds();
        let u = 1.0 / env.temp.to_kelvin().0;
        [
            (env.d_vtn.0 / self.vt_span).clamp(-1.1, 1.1),
            (env.d_vtp.0 / self.vt_span).clamp(-1.1, 1.1),
            (env.mu_n.ln() / self.ln_mu_span).clamp(-1.1, 1.1),
            (env.mu_p.ln() / self.ln_mu_span).clamp(-1.1, 1.1),
            (((u - u0) / (u1 - u0) * 2.0 - 1.0).clamp(-1.1, 1.1)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap space for structural unit tests (the full default space is
    /// exercised in release mode by the A1 ablation bench).
    fn test_space() -> CharacterizationSpace {
        CharacterizationSpace {
            degree: 4,
            points_per_axis: 5,
            ..CharacterizationSpace::default()
        }
    }

    fn golden() -> (Technology, RoBank, GoldenModel) {
        let tech = Technology::n65();
        let spec = BankSpec::default_65nm();
        let bank = RoBank::new(&tech, spec).unwrap();
        let model = GoldenModel::characterize(&tech, spec, test_space()).unwrap();
        (tech, bank, model)
    }

    #[test]
    fn multi_indices_counts_match_combinatorics() {
        // C(dims+degree, degree) terms of total degree <= degree.
        assert_eq!(multi_indices(5, 4).len(), 126);
        assert_eq!(multi_indices(5, 3).len(), 56);
        assert_eq!(multi_indices(2, 2).len(), 6);
        assert_eq!(multi_indices(1, 4).len(), 5);
    }

    #[test]
    fn fit_error_small_on_grid() {
        let (_, _, model) = golden();
        // Degree-4 over the full (wide) box: a few percent worst-case at
        // the extreme corners; the default degree-5 space used by the
        // sensor is several times tighter (exercised by the A1 ablation).
        assert!(
            model.worst_fit_error() < 6e-2,
            "worst fit error {}",
            model.worst_fit_error()
        );
    }

    #[test]
    fn prediction_matches_analytic_off_grid() {
        let (tech, bank, model) = golden();
        let spec = *bank.spec();
        let env = CmosEnv {
            temp: Celsius(37.3),
            d_vtn: Volt(0.0137),
            d_vtp: Volt(-0.0082),
            mu_n: 1.021,
            mu_p: 0.984,
        };
        for (class, vdd) in [
            (RoClass::PsroN, spec.vdd_low),
            (RoClass::PsroP, spec.vdd_high),
            (RoClass::Tsro, spec.vdd_tsro),
        ] {
            let truth = bank.frequency(&tech, class, vdd, &env).0.ln();
            let pred = model.ln_frequency(class, vdd, &env).unwrap();
            // Mild interior point: far better than the box-corner worst case.
            assert!(
                (pred - truth).abs() < 3e-3,
                "{}: pred {pred:.5} vs truth {truth:.5}",
                class.name()
            );
        }
    }

    #[test]
    fn uncharacterized_pair_rejected() {
        let (_, _, model) = golden();
        let env = CmosEnv::nominal();
        assert!(model.ln_frequency(RoClass::Tsro, Volt(0.77), &env).is_err());
    }

    #[test]
    fn normalization_round_trip_center() {
        let space = CharacterizationSpace::default();
        let env = space.denormalize(&[0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(env.d_vtn.0.abs() < 1e-12);
        assert!((env.mu_n - 1.0).abs() < 1e-12);
        let x = space.normalize(&env);
        assert!(x.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn normalization_clamps_outside_box() {
        let space = CharacterizationSpace::default();
        let env = CmosEnv {
            d_vtn: Volt(1.0),
            ..CmosEnv::nominal()
        };
        assert_eq!(space.normalize(&env)[0], 1.1);
    }

    #[test]
    fn lower_degree_fits_worse() {
        let tech = Technology::n65();
        let spec = BankSpec::default_65nm();
        let d2 = GoldenModel::characterize(
            &tech,
            spec,
            CharacterizationSpace {
                degree: 2,
                ..test_space()
            },
        )
        .unwrap();
        let d4 = GoldenModel::characterize(&tech, spec, test_space()).unwrap();
        assert!(d2.worst_fit_error() > d4.worst_fit_error());
    }
}
