//! Per-die calibration state.
//!
//! The self-calibration pass extracts the die's process state and stores it
//! in fixed-point registers. Register word length is part of the hardware
//! spec — storing through [`Fixed`] models the quantization the real sensor
//! pays (and is one axis of the A1 ablation).
//!
//! Each register word also carries a parity bit, written once at store
//! time. A single-event upset flips a register bit but not its parity, so
//! [`Calibration::parity_errors`] exposes exactly which registers can no
//! longer be trusted — the hook the sensor's parity scrub checks before
//! every conversion.

use crate::error::SensorError;
use ptsim_circuit::fixed::{Fixed, QFormat};
use ptsim_device::units::{Celsius, Volt};

/// Number of calibration registers (`ΔVtn, ΔVtp, µn, µp, ln-TSRO-scale`).
pub const CALIB_REGISTERS: usize = 5;

/// The stored result of one self-calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    d_vtn: Fixed,
    d_vtp: Fixed,
    mu_n: Fixed,
    mu_p: Fixed,
    ln_tsro_scale: Fixed,
    calib_temp: Celsius,
    /// Per-register parity written at store time: bit *i* is the XOR of
    /// register *i*'s word bits.
    parity: u8,
}

/// Parity (XOR of all bits) of one register word.
fn word_parity(reg: Fixed) -> u8 {
    ((reg.raw() as u64).count_ones() & 1) as u8
}

impl Calibration {
    /// Quantizes and stores a calibration result.
    ///
    /// `ln_tsro_scale` is the log-domain multiplicative correction that maps
    /// the golden TSRO model onto this die's measured TSRO (absorbing the
    /// TSRO's local mismatch).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn store(
        d_vtn: Volt,
        d_vtp: Volt,
        mu_n: f64,
        mu_p: f64,
        ln_tsro_scale: f64,
        calib_temp: Celsius,
        format: QFormat,
    ) -> Self {
        let mut cal = Calibration {
            d_vtn: Fixed::from_f64(d_vtn.0, format),
            d_vtp: Fixed::from_f64(d_vtp.0, format),
            mu_n: Fixed::from_f64(mu_n, format),
            mu_p: Fixed::from_f64(mu_p, format),
            ln_tsro_scale: Fixed::from_f64(ln_tsro_scale, format),
            calib_temp,
            parity: 0,
        };
        cal.parity = cal.computed_parity();
        cal
    }

    /// Every register word in `ΔVtn, ΔVtp, µn, µp, ln-scale` order.
    fn registers(&self) -> [Fixed; CALIB_REGISTERS] {
        [
            self.d_vtn,
            self.d_vtp,
            self.mu_n,
            self.mu_p,
            self.ln_tsro_scale,
        ]
    }

    /// The raw word of register `index` (`ΔVtn, ΔVtp, µn, µp, ln-scale`
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidRegister`] for indices outside
    /// `0..CALIB_REGISTERS` — a corrupted register pointer surfaces as a
    /// recoverable fault instead of aborting the worker that hit it.
    pub fn register(&self, index: usize) -> Result<Fixed, SensorError> {
        self.registers()
            .get(index)
            .copied()
            .ok_or(SensorError::InvalidRegister { index })
    }

    fn register_mut(&mut self, index: usize) -> Result<&mut Fixed, SensorError> {
        match index {
            0 => Ok(&mut self.d_vtn),
            1 => Ok(&mut self.d_vtp),
            2 => Ok(&mut self.mu_n),
            3 => Ok(&mut self.mu_p),
            4 => Ok(&mut self.ln_tsro_scale),
            _ => Err(SensorError::InvalidRegister { index }),
        }
    }

    fn computed_parity(&self) -> u8 {
        self.registers()
            .iter()
            .enumerate()
            .fold(0u8, |mask, (i, &reg)| mask | (word_parity(reg) << i))
    }

    /// Bitmask of registers whose current parity disagrees with the parity
    /// written at store time (bit *i* = register *i*). `0` means every
    /// register still checks out.
    #[must_use]
    pub fn parity_errors(&self) -> u8 {
        self.computed_parity() ^ self.parity
    }

    /// Flips one bit of one register word *without* updating the stored
    /// parity — exactly what a single-event upset does to the physical
    /// register. Register indices follow the `ΔVtn, ΔVtp, µn, µp, ln-scale`
    /// order; out-of-range registers are ignored (no flip).
    pub fn inject_bit_flip(&mut self, register: usize, bit: u32) {
        if let Ok(reg) = self.register_mut(register) {
            *reg = reg.with_bit_flipped(bit);
        }
    }

    /// Extracted NMOS threshold shift (as quantized in the register).
    #[must_use]
    pub fn d_vtn(&self) -> Volt {
        Volt(self.d_vtn.to_f64())
    }

    /// Extracted PMOS threshold shift.
    #[must_use]
    pub fn d_vtp(&self) -> Volt {
        Volt(self.d_vtp.to_f64())
    }

    /// Extracted NMOS mobility multiplier.
    #[must_use]
    pub fn mu_n(&self) -> f64 {
        self.mu_n.to_f64()
    }

    /// Extracted PMOS mobility multiplier.
    #[must_use]
    pub fn mu_p(&self) -> f64 {
        self.mu_p.to_f64()
    }

    /// Stored TSRO log-domain correction.
    #[must_use]
    pub fn ln_tsro_scale(&self) -> f64 {
        self.ln_tsro_scale.to_f64()
    }

    /// Temperature the calibration assumed.
    #[must_use]
    pub fn calib_temp(&self) -> Celsius {
        self.calib_temp
    }

    /// Register format in use.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.d_vtn.format()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trips_within_resolution() {
        let c = Calibration::store(
            Volt(0.0123),
            Volt(-0.0045),
            1.031,
            0.978,
            0.0021,
            Celsius(25.0),
            QFormat::Q16_16,
        );
        let res = QFormat::Q16_16.resolution();
        assert!((c.d_vtn().0 - 0.0123).abs() <= res);
        assert!((c.d_vtp().0 + 0.0045).abs() <= res);
        assert!((c.mu_n() - 1.031).abs() <= res);
        assert!((c.mu_p() - 0.978).abs() <= res);
        assert!((c.ln_tsro_scale() - 0.0021).abs() <= res);
        assert_eq!(c.calib_temp(), Celsius(25.0));
    }

    #[test]
    fn narrow_format_visibly_coarser() {
        let fine = Calibration::store(
            Volt(0.0123),
            Volt::ZERO,
            1.0,
            1.0,
            0.0,
            Celsius(25.0),
            QFormat::Q16_16,
        );
        let coarse = Calibration::store(
            Volt(0.0123),
            Volt::ZERO,
            1.0,
            1.0,
            0.0,
            Celsius(25.0),
            QFormat::Q8_8,
        );
        let err_fine = (fine.d_vtn().0 - 0.0123).abs();
        let err_coarse = (coarse.d_vtn().0 - 0.0123).abs();
        assert!(err_coarse > err_fine);
        assert_eq!(coarse.format(), QFormat::Q8_8);
    }

    fn sample() -> Calibration {
        Calibration::store(
            Volt(0.0123),
            Volt(-0.0045),
            1.031,
            0.978,
            0.0021,
            Celsius(25.0),
            QFormat::Q16_16,
        )
    }

    #[test]
    fn fresh_calibration_has_clean_parity() {
        assert_eq!(sample().parity_errors(), 0);
    }

    #[test]
    fn seu_flips_exactly_one_parity_bit() {
        for register in 0..CALIB_REGISTERS {
            let mut c = sample();
            c.inject_bit_flip(register, 7);
            assert_eq!(
                c.parity_errors(),
                1 << register,
                "register {register} parity mask"
            );
        }
    }

    #[test]
    fn double_flip_restores_parity_and_value() {
        let mut c = sample();
        let before = c;
        c.inject_bit_flip(2, 11);
        assert_ne!(c.mu_n(), before.mu_n());
        assert_ne!(c.parity_errors(), 0);
        c.inject_bit_flip(2, 11);
        assert_eq!(c, before);
        assert_eq!(c.parity_errors(), 0);
    }

    #[test]
    fn seu_changes_stored_value_measurably() {
        let mut c = sample();
        // Bit 16+5 in Q16.16 is 2^5 = 32 in value terms — a catastrophic
        // corruption of a millivolt-scale register.
        c.inject_bit_flip(0, 21);
        assert!((c.d_vtn().0 - 0.0123).abs() > 1.0);
        assert_eq!(c.parity_errors(), 0b00001);
    }

    #[test]
    fn out_of_range_register_is_ignored() {
        let mut c = sample();
        let before = c;
        c.inject_bit_flip(CALIB_REGISTERS, 3);
        assert_eq!(c, before);
    }

    #[test]
    fn register_returns_each_word_in_order() {
        let c = sample();
        let words: Vec<Fixed> = (0..CALIB_REGISTERS)
            .map(|i| c.register(i).expect("in-range register"))
            .collect();
        assert_eq!(words[0].to_f64(), c.d_vtn().0);
        assert_eq!(words[1].to_f64(), c.d_vtp().0);
        assert_eq!(words[2].to_f64(), c.mu_n());
        assert_eq!(words[3].to_f64(), c.mu_p());
        assert_eq!(words[4].to_f64(), c.ln_tsro_scale());
    }

    #[test]
    fn out_of_range_register_is_typed_error_not_panic() {
        // Regression: these used to be `panic!` arms, which aborted the
        // fleet worker that hit a corrupted register pointer.
        let c = sample();
        for index in [CALIB_REGISTERS, CALIB_REGISTERS + 1, usize::MAX] {
            match c.register(index) {
                Err(SensorError::InvalidRegister { index: got }) => assert_eq!(got, index),
                other => panic!("expected InvalidRegister, got {other:?}"),
            }
        }
        let msg = c.register(7).unwrap_err().to_string();
        assert!(msg.contains("7") && msg.contains("out of range"), "{msg}");
    }
}
