//! Per-die calibration state.
//!
//! The self-calibration pass extracts the die's process state and stores it
//! in fixed-point registers. Register word length is part of the hardware
//! spec — storing through [`Fixed`] models the quantization the real sensor
//! pays (and is one axis of the A1 ablation).

use ptsim_circuit::fixed::{Fixed, QFormat};
use ptsim_device::units::{Celsius, Volt};

/// The stored result of one self-calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    d_vtn: Fixed,
    d_vtp: Fixed,
    mu_n: Fixed,
    mu_p: Fixed,
    ln_tsro_scale: Fixed,
    calib_temp: Celsius,
}

impl Calibration {
    /// Quantizes and stores a calibration result.
    ///
    /// `ln_tsro_scale` is the log-domain multiplicative correction that maps
    /// the golden TSRO model onto this die's measured TSRO (absorbing the
    /// TSRO's local mismatch).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn store(
        d_vtn: Volt,
        d_vtp: Volt,
        mu_n: f64,
        mu_p: f64,
        ln_tsro_scale: f64,
        calib_temp: Celsius,
        format: QFormat,
    ) -> Self {
        Calibration {
            d_vtn: Fixed::from_f64(d_vtn.0, format),
            d_vtp: Fixed::from_f64(d_vtp.0, format),
            mu_n: Fixed::from_f64(mu_n, format),
            mu_p: Fixed::from_f64(mu_p, format),
            ln_tsro_scale: Fixed::from_f64(ln_tsro_scale, format),
            calib_temp,
        }
    }

    /// Extracted NMOS threshold shift (as quantized in the register).
    #[must_use]
    pub fn d_vtn(&self) -> Volt {
        Volt(self.d_vtn.to_f64())
    }

    /// Extracted PMOS threshold shift.
    #[must_use]
    pub fn d_vtp(&self) -> Volt {
        Volt(self.d_vtp.to_f64())
    }

    /// Extracted NMOS mobility multiplier.
    #[must_use]
    pub fn mu_n(&self) -> f64 {
        self.mu_n.to_f64()
    }

    /// Extracted PMOS mobility multiplier.
    #[must_use]
    pub fn mu_p(&self) -> f64 {
        self.mu_p.to_f64()
    }

    /// Stored TSRO log-domain correction.
    #[must_use]
    pub fn ln_tsro_scale(&self) -> f64 {
        self.ln_tsro_scale.to_f64()
    }

    /// Temperature the calibration assumed.
    #[must_use]
    pub fn calib_temp(&self) -> Celsius {
        self.calib_temp
    }

    /// Register format in use.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.d_vtn.format()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trips_within_resolution() {
        let c = Calibration::store(
            Volt(0.0123),
            Volt(-0.0045),
            1.031,
            0.978,
            0.0021,
            Celsius(25.0),
            QFormat::Q16_16,
        );
        let res = QFormat::Q16_16.resolution();
        assert!((c.d_vtn().0 - 0.0123).abs() <= res);
        assert!((c.d_vtp().0 + 0.0045).abs() <= res);
        assert!((c.mu_n() - 1.031).abs() <= res);
        assert!((c.mu_p() - 0.978).abs() <= res);
        assert!((c.ln_tsro_scale() - 0.0021).abs() <= res);
        assert_eq!(c.calib_temp(), Celsius(25.0));
    }

    #[test]
    fn narrow_format_visibly_coarser() {
        let fine = Calibration::store(
            Volt(0.0123),
            Volt::ZERO,
            1.0,
            1.0,
            0.0,
            Celsius(25.0),
            QFormat::Q16_16,
        );
        let coarse = Calibration::store(
            Volt(0.0123),
            Volt::ZERO,
            1.0,
            1.0,
            0.0,
            Celsius(25.0),
            QFormat::Q8_8,
        );
        let err_fine = (fine.d_vtn().0 - 0.0123).abs();
        let err_coarse = (coarse.d_vtn().0 - 0.0123).abs();
        assert!(err_coarse > err_fine);
        assert_eq!(coarse.format(), QFormat::Q8_8);
    }
}
