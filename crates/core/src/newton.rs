//! Small dense damped Newton–Raphson solver used by the decoupling math.
//!
//! The systems are tiny (1–4 unknowns), so a straightforward
//! partial-pivoting Gaussian elimination and forward-difference Jacobians
//! are entirely adequate. The solver has two personalities:
//!
//! * the **default** options reproduce the plain damped iteration the
//!   original conversion datapath runs (bit-identical to earlier
//!   revisions), and
//! * [`NewtonOptions::robust`] adds adaptive step damping (halve on
//!   residual growth) and a Jacobian condition guard — the retuned mode the
//!   hardened sensor falls back to when the plain solve diverges on a
//!   corrupted measurement.

use crate::error::SensorError;
use ptsim_device::delay::LANES;

/// Options controlling a Newton solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations before reporting divergence.
    pub max_iterations: usize,
    /// Convergence tolerance on the residual ∞-norm.
    pub tolerance: f64,
    /// Scalar multiplier in `(0, 1]` applied to every Newton update
    /// *before* the per-component `step_limits` clamp (the clamp itself is
    /// the separate `step_limits` argument of [`newton_solve`]; this field
    /// uniformly shortens the update).
    pub damping: f64,
    /// When `true`, the solver backs off: if an accepted step *grows* the
    /// residual ∞-norm, the step is reverted and the working damping is
    /// halved (down to `min_damping`); it relaxes back toward `damping`
    /// after successful steps.
    pub adaptive: bool,
    /// Floor for the adaptive damping back-off.
    pub min_damping: f64,
    /// Reject the solve with [`SensorError::IllConditioned`] if the
    /// Jacobian's condition estimate exceeds this (∞-norm over smallest
    /// pivot — a cheap lower bound). `f64::INFINITY` disables the guard.
    pub max_condition: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 60,
            tolerance: 1e-10,
            damping: 1.0,
            adaptive: false,
            min_damping: 1.0 / 64.0,
            max_condition: f64::INFINITY,
        }
    }
}

impl NewtonOptions {
    /// The hardened fallback tuning: adaptive damping with a conservative
    /// initial step, more iterations, and a condition guard, for re-running
    /// a solve that diverged (or went singular) on implausible inputs.
    #[must_use]
    pub fn robust() -> Self {
        NewtonOptions {
            max_iterations: 150,
            tolerance: 1e-10,
            damping: 0.7,
            adaptive: true,
            min_damping: 0.05,
            max_condition: 1e12,
        }
    }
}

/// Diagnostics from one linear solve: enough to estimate conditioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSolveInfo {
    /// ∞-norm (max absolute row sum) of the matrix before elimination.
    pub norm_inf: f64,
    /// Smallest absolute pivot encountered during elimination.
    pub min_pivot: f64,
}

impl LinearSolveInfo {
    /// Cheap lower-bound condition estimate: `‖A‖∞ / min|pivot|`.
    #[must_use]
    pub fn condition_estimate(&self) -> f64 {
        if self.min_pivot > 0.0 {
            self.norm_inf / self.min_pivot
        } else {
            f64::INFINITY
        }
    }
}

/// Solves `A·x = b` in place by Gaussian elimination with partial pivoting.
/// `a` is row-major `n × n`.
///
/// Singularity is decided against the matrix's own scale: a pivot smaller
/// than `n · ε · ‖A‖∞` is treated as zero. (A fixed absolute threshold like
/// `1e-300` only catches exact zeros — any rank-deficient system built from
/// real measurements fails far above that.)
///
/// # Errors
///
/// Returns [`SensorError::SingularJacobian`] if a pivot is numerically zero
/// at the matrix's scale.
pub fn solve_linear(
    a: &mut [f64],
    b: &mut [f64],
    n: usize,
    what: &'static str,
) -> Result<LinearSolveInfo, SensorError> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    let norm_inf = (0..n)
        .map(|row| (0..n).map(|k| a[row * n + k].abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    let pivot_floor = n as f64 * f64::EPSILON * norm_inf;
    let mut min_pivot = f64::INFINITY;
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        let pivot_abs = a[pivot * n + col].abs();
        if pivot_abs <= pivot_floor || !pivot_abs.is_finite() {
            return Err(SensorError::SingularJacobian { what });
        }
        min_pivot = min_pivot.min(pivot_abs);
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate.
        for row in col + 1..n {
            let factor = a[row * n + col] / a[col * n + col];
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in col + 1..n {
            sum -= a[col * n + k] * b[k];
        }
        b[col] = sum / a[col * n + col];
    }
    Ok(LinearSolveInfo {
        norm_inf,
        min_pivot,
    })
}

/// Largest system [`NewtonScratch`] supports — the calibration decoupling
/// (4 unknowns) is the biggest solve the sensor datapath runs.
pub const MAX_UNKNOWNS: usize = 6;

/// Caller-owned workspace for [`newton_solve_with`] and [`solve_linear`]:
/// the Jacobian, probe point, revert point and residual buffers, sized for
/// [`MAX_UNKNOWNS`] and stored inline so a reused scratch makes the whole
/// solve allocation-free.
#[derive(Debug, Clone)]
pub struct NewtonScratch {
    jac: [f64; MAX_UNKNOWNS * MAX_UNKNOWNS],
    xp: [f64; MAX_UNKNOWNS],
    x_prev: [f64; MAX_UNKNOWNS],
    r: [f64; MAX_UNKNOWNS],
    rp: [f64; MAX_UNKNOWNS],
    rhs: [f64; MAX_UNKNOWNS],
    backoffs: u64,
}

impl NewtonScratch {
    /// Fresh (zeroed) workspace.
    #[must_use]
    pub fn new() -> Self {
        NewtonScratch {
            jac: [0.0; MAX_UNKNOWNS * MAX_UNKNOWNS],
            xp: [0.0; MAX_UNKNOWNS],
            x_prev: [0.0; MAX_UNKNOWNS],
            r: [0.0; MAX_UNKNOWNS],
            rp: [0.0; MAX_UNKNOWNS],
            rhs: [0.0; MAX_UNKNOWNS],
            backoffs: 0,
        }
    }

    /// Cumulative adaptive damping back-offs (reverted steps) across every
    /// solve that has used this scratch. The diagnostic counterpart of the
    /// returned iteration count: observers difference it around a solve to
    /// attribute back-offs. Never reset by the solver itself.
    #[must_use]
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }
}

impl Default for NewtonScratch {
    fn default() -> Self {
        NewtonScratch::new()
    }
}

/// Damped Newton–Raphson on `residual(x) = 0`.
///
/// Compatibility wrapper over [`newton_solve_with`] for callers that do not
/// hold a [`NewtonScratch`]; the residual closure returns a fresh `Vec` per
/// evaluation. The hot path uses [`newton_solve_with`] directly.
///
/// * `x` — initial guess, updated in place to the solution.
/// * `residual` — returns the residual vector (same length as `x`).
/// * `fd_steps` — per-component forward-difference steps for the Jacobian.
/// * `step_limits` — per-component clamp on each Newton update.
///
/// Returns the number of iterations used.
///
/// # Errors
///
/// * [`SensorError::SolverDiverged`] if the residual norm does not reach
///   `opts.tolerance` within `opts.max_iterations`;
/// * [`SensorError::SingularJacobian`] if the Jacobian becomes singular;
/// * [`SensorError::IllConditioned`] if `opts.max_condition` is finite and
///   the Jacobian's condition estimate exceeds it.
pub fn newton_solve<F>(
    x: &mut [f64],
    mut residual: F,
    fd_steps: &[f64],
    step_limits: &[f64],
    opts: &NewtonOptions,
    what: &'static str,
) -> Result<usize, SensorError>
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    let mut scratch = NewtonScratch::new();
    newton_solve_with(
        &mut scratch,
        x,
        |v, out| out.copy_from_slice(&residual(v)),
        fd_steps,
        step_limits,
        opts,
        what,
    )
}

/// Damped Newton–Raphson on `residual(x, out) = 0` with a caller-owned
/// [`NewtonScratch`] — zero heap allocations, so a scratch reused across
/// conversions makes every solve of the batch hot path allocation-free.
///
/// The residual callback writes the residual of `x` (first argument) into
/// `out` (second argument, length `x.len()`). All other semantics — and all
/// floating-point results, bit for bit — match [`newton_solve`].
///
/// # Panics
///
/// Panics if `x.len() > MAX_UNKNOWNS`.
///
/// # Errors
///
/// Same as [`newton_solve`].
pub fn newton_solve_with<F>(
    scratch: &mut NewtonScratch,
    x: &mut [f64],
    mut residual: F,
    fd_steps: &[f64],
    step_limits: &[f64],
    opts: &NewtonOptions,
    what: &'static str,
) -> Result<usize, SensorError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let n = x.len();
    assert!(n <= MAX_UNKNOWNS, "newton_solve_with: {n} > MAX_UNKNOWNS");
    debug_assert_eq!(fd_steps.len(), n);
    debug_assert_eq!(step_limits.len(), n);

    let NewtonScratch {
        jac,
        xp,
        x_prev,
        r,
        rp,
        rhs,
        backoffs,
    } = scratch;
    let jac = &mut jac[..n * n];
    let xp = &mut xp[..n];
    let x_prev = &mut x_prev[..n];
    let r = &mut r[..n];
    let rp = &mut rp[..n];
    let rhs = &mut rhs[..n];
    let mut damp = opts.damping;
    let mut prev_norm = f64::INFINITY;

    for iter in 1..=opts.max_iterations {
        residual(x, r);
        let norm = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if norm < opts.tolerance {
            return Ok(iter);
        }
        // `partial_cmp` keeps the NaN case explicit: a NaN norm must also
        // trigger the revert, exactly like a worsened one.
        let improved = matches!(
            norm.partial_cmp(&prev_norm),
            Some(core::cmp::Ordering::Less | core::cmp::Ordering::Equal)
        );
        if opts.adaptive && !improved && iter > 1 {
            // The last step made things worse (or produced NaN): revert it
            // and retry from the previous point with half the damping.
            x.copy_from_slice(x_prev);
            damp = (damp * 0.5).max(opts.min_damping);
            *backoffs += 1;
            continue;
        }
        prev_norm = norm;
        x_prev.copy_from_slice(x);
        // Forward-difference Jacobian.
        for j in 0..n {
            xp.copy_from_slice(x);
            xp[j] += fd_steps[j];
            residual(xp, rp);
            for i in 0..n {
                jac[i * n + j] = (rp[i] - r[i]) / fd_steps[j];
            }
        }
        rhs.copy_from_slice(r);
        let info = solve_linear(jac, rhs, n, what)?;
        if opts.max_condition.is_finite() {
            let cond = info.condition_estimate();
            if cond > opts.max_condition {
                return Err(SensorError::IllConditioned {
                    what,
                    condition: cond,
                });
            }
        }
        for j in 0..n {
            let step = (damp * rhs[j]).clamp(-step_limits[j], step_limits[j]);
            x[j] -= step;
        }
        if opts.adaptive {
            // Relax the damping back toward the configured value after an
            // accepted step.
            damp = (damp * 1.5).min(opts.damping);
        }
    }
    residual(x, r);
    let final_norm = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    Err(SensorError::SolverDiverged {
        what,
        iterations: opts.max_iterations,
        residual: final_norm,
    })
}

/// Per-lane outcome of [`newton_solve_lanes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneSolve {
    /// Lane was masked out on entry; its unknowns were never updated.
    Masked,
    /// Converged after this many iterations — the same count the scalar
    /// solver would report for this lane's system.
    Converged(usize),
    /// Singular Jacobian, or no convergence within the iteration budget.
    /// The caller re-runs this lane through the scalar escalation ladder,
    /// which reproduces the identical failure and then retunes — so a
    /// failed lane needs no state snapshot, only its original inputs.
    Failed,
}

/// Lane-parallel damped Newton–Raphson: up to [`LANES`] independent `N`-
/// unknown systems advance in lock-step, with the unknowns held column-wise
/// (`x[j][lane]`) so the residual callback can evaluate all lanes in
/// fixed-trip loops.
///
/// Semantics are pinned to [`NewtonOptions::default()`] — plain full-step
/// iteration, no adaptive damping, no condition guard — because that is the
/// only personality the batch hot path runs; anything that would escalate
/// (divergence, singular Jacobian) marks the lane [`LaneSolve::Failed`] and
/// is replayed through the scalar ladder instead. For every lane that
/// converges, the iterate trajectory, iteration count and final unknowns
/// are bit-identical to [`newton_solve_with`] on that lane's system alone.
///
/// The residual callback is `residual(x, col, active, out)`:
/// * `col == None` — evaluate the residual of the base point `x` for every
///   active lane (write `out[i][lane]`); the callback may cache per-lane
///   intermediates here,
/// * `col == Some(j)` — `x` is the base point with row `j` perturbed by
///   `+fd_steps[j]` in every lane; the callback may reuse base-point
///   intermediates for rows it knows the perturbation cannot touch
///   (bit-identical to the scalar path's memo hits, which replay stored
///   values for exactly those operands),
/// * `active` — the lanes still iterating at this call. The solver never
///   reads residual entries of inactive lanes, so the callback is free to
///   skip their (transcendental-heavy) evaluation entirely and leave stale
///   values behind; active lanes stay bit-identical either way. Masked,
///   converged and failed lanes have their unknowns frozen.
///
/// Returns the per-lane outcome.
///
/// # Panics
///
/// Panics if `N > MAX_UNKNOWNS`.
pub fn newton_solve_lanes<const N: usize, F>(
    x: &mut [[f64; LANES]; N],
    mut active: [bool; LANES],
    mut residual: F,
    fd_steps: &[f64; N],
    step_limits: &[f64; N],
    what: &'static str,
) -> [LaneSolve; LANES]
where
    F: FnMut(&[[f64; LANES]; N], Option<usize>, &[bool; LANES], &mut [[f64; LANES]; N]),
{
    assert!(N <= MAX_UNKNOWNS, "newton_solve_lanes: {N} > MAX_UNKNOWNS");
    let opts = NewtonOptions::default();
    let mut status = active.map(|a| {
        if a {
            LaneSolve::Failed
        } else {
            LaneSolve::Masked
        }
    });
    let mut r = [[0.0; LANES]; N];
    let mut rp = [[0.0; LANES]; N];
    let mut jac = [[[0.0; LANES]; N]; N];

    for iter in 1..=opts.max_iterations {
        if !active.contains(&true) {
            break;
        }
        residual(x, None, &active, &mut r);
        for l in 0..LANES {
            if !active[l] {
                continue;
            }
            let mut norm = 0.0f64;
            for row in &r {
                norm = norm.max(row[l].abs());
            }
            if norm < opts.tolerance {
                status[l] = LaneSolve::Converged(iter);
                active[l] = false;
            }
        }
        if !active.contains(&true) {
            break;
        }
        // Forward-difference Jacobian, one perturbed column at a time
        // across all lanes.
        for j in 0..N {
            let saved = x[j];
            for xl in x[j].iter_mut() {
                *xl += fd_steps[j];
            }
            residual(x, Some(j), &active, &mut rp);
            x[j] = saved;
            for i in 0..N {
                for l in 0..LANES {
                    jac[i][j][l] = (rp[i][l] - r[i][l]) / fd_steps[j];
                }
            }
        }
        // Per-lane linear solve and clamped full step (damping 1.0 —
        // multiplying by 1.0 is a bitwise no-op, so it is elided).
        for l in 0..LANES {
            if !active[l] {
                continue;
            }
            let mut a = [0.0; MAX_UNKNOWNS * MAX_UNKNOWNS];
            let mut b = [0.0; MAX_UNKNOWNS];
            for i in 0..N {
                for j in 0..N {
                    a[i * N + j] = jac[i][j][l];
                }
                b[i] = r[i][l];
            }
            match solve_linear(&mut a[..N * N], &mut b[..N], N, what) {
                Ok(_) => {
                    for j in 0..N {
                        x[j][l] -= b[j].clamp(-step_limits[j], step_limits[j]);
                    }
                }
                Err(_) => {
                    status[l] = LaneSolve::Failed;
                    active[l] = false;
                }
            }
        }
    }
    status
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_solve_2x2() {
        // [2 1; 1 3]·x = [5; 10] → x = [1; 3]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        solve_linear(&mut a, &mut b, 2, "test").unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        solve_linear(&mut a, &mut b, 2, "test").unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_error() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            solve_linear(&mut a, &mut b, 2, "test"),
            Err(SensorError::SingularJacobian { .. })
        ));
    }

    #[test]
    fn near_singular_at_scale_is_error_despite_large_absolute_pivot() {
        // Rows differ by one part in 1e18 — far above 1e-300 in absolute
        // terms, but rank-deficient at the matrix's own scale. The old
        // fixed threshold accepted this and returned garbage.
        let mut a = vec![1e10, 2e10, 1e10, 2e10 * (1.0 + 1e-18)];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            solve_linear(&mut a, &mut b, 2, "test"),
            Err(SensorError::SingularJacobian { .. })
        ));
    }

    #[test]
    fn well_scaled_tiny_matrix_still_solves() {
        // Uniformly tiny but well-conditioned: must NOT be rejected (the
        // scaled test is relative, not absolute).
        let mut a = vec![2e-200, 1e-200, 1e-200, 3e-200];
        let mut b = vec![5e-200, 10e-200];
        solve_linear(&mut a, &mut b, 2, "test").unwrap();
        assert!((b[0] - 1.0).abs() < 1e-10);
        assert!((b[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_info_reports_conditioning() {
        let mut a = vec![1.0, 0.0, 0.0, 1e-8];
        let mut b = vec![1.0, 1.0];
        let info = solve_linear(&mut a, &mut b, 2, "test").unwrap();
        assert!(info.condition_estimate() > 1e7);
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![1.0, 1.0];
        let info = solve_linear(&mut a, &mut b, 2, "test").unwrap();
        assert!(info.condition_estimate() < 10.0);
    }

    #[test]
    fn newton_scalar_sqrt() {
        // x² = 2
        let mut x = [1.0];
        let iters = newton_solve(
            &mut x,
            |v| vec![v[0] * v[0] - 2.0],
            &[1e-7],
            &[10.0],
            &NewtonOptions::default(),
            "sqrt",
        )
        .unwrap();
        assert!((x[0] - 2.0f64.sqrt()).abs() < 1e-8);
        assert!(iters < 20);
    }

    #[test]
    fn newton_2d_nonlinear() {
        // x·y = 6, x + y = 5 → (2, 3) or (3, 2).
        let mut x = [1.0, 4.0];
        newton_solve(
            &mut x,
            |v| vec![v[0] * v[1] - 6.0, v[0] + v[1] - 5.0],
            &[1e-7, 1e-7],
            &[10.0, 10.0],
            &NewtonOptions::default(),
            "2d",
        )
        .unwrap();
        assert!((x[0] * x[1] - 6.0).abs() < 1e-8);
        assert!((x[0] + x[1] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn newton_respects_step_limits() {
        // Start far away; tight clamp forces many small steps but still
        // converges.
        let mut x = [100.0];
        let iters = newton_solve(
            &mut x,
            |v| vec![v[0] - 1.0],
            &[1e-7],
            &[2.0],
            &NewtonOptions {
                max_iterations: 200,
                ..NewtonOptions::default()
            },
            "clamped",
        )
        .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!(iters >= 50, "clamp forces ≥ (100-1)/2 iterations");
    }

    #[test]
    fn newton_divergence_reported() {
        // Residual never goes to zero.
        let mut x = [0.0];
        let err = newton_solve(
            &mut x,
            |v| vec![v[0].powi(2) + 1.0],
            &[1e-7],
            &[1.0],
            &NewtonOptions {
                max_iterations: 10,
                ..NewtonOptions::default()
            },
            "impossible",
        )
        .unwrap_err();
        assert!(matches!(err, SensorError::SolverDiverged { .. }));
    }

    #[test]
    fn newton_4x4_linear_system_one_step() {
        let mut x = [0.0; 4];
        let target = [1.0, -2.0, 3.0, 0.5];
        newton_solve(
            &mut x,
            |v| (0..4).map(|i| v[i] - target[i]).collect(),
            &[1e-6; 4],
            &[100.0; 4],
            &NewtonOptions::default(),
            "4x4",
        )
        .unwrap();
        for i in 0..4 {
            assert!((x[i] - target[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn adaptive_damping_recovers_where_plain_newton_oscillates() {
        // f(x) = atan(x) from x0 = 2: undamped Newton overshoots and
        // diverges (|x| grows every step); the adaptive back-off shrinks
        // the step until the iteration enters the convergent basin.
        let plain = NewtonOptions {
            max_iterations: 20,
            ..NewtonOptions::default()
        };
        let mut x = [2.0];
        assert!(newton_solve(
            &mut x,
            |v| vec![v[0].atan()],
            &[1e-7],
            &[1e6],
            &plain,
            "atan-plain",
        )
        .is_err());

        let mut x = [2.0];
        newton_solve(
            &mut x,
            |v| vec![v[0].atan()],
            &[1e-7],
            &[1e6],
            &NewtonOptions::robust(),
            "atan-robust",
        )
        .unwrap();
        assert!(x[0].abs() < 1e-8);
    }

    #[test]
    fn adaptive_backoffs_are_counted_in_the_scratch() {
        // Adaptive damping with a full-length initial step: the first
        // Newton step on atan from x0 = 2 overshoots (|atan| grows), so the
        // solver must revert it — and the scratch must count each revert.
        let opts = NewtonOptions {
            adaptive: true,
            damping: 1.0,
            min_damping: 0.05,
            max_iterations: 150,
            ..NewtonOptions::default()
        };
        let mut scratch = NewtonScratch::new();
        assert_eq!(scratch.backoffs(), 0);
        let mut x = [2.0];
        newton_solve_with(
            &mut scratch,
            &mut x,
            |v, out| out[0] = v[0].atan(),
            &[1e-7],
            &[1e6],
            &opts,
            "atan-counted",
        )
        .unwrap();
        assert!(scratch.backoffs() > 0, "reverted steps must be counted");
        // A well-behaved solve adds nothing.
        let before = scratch.backoffs();
        let mut x = [1.0];
        newton_solve_with(
            &mut scratch,
            &mut x,
            |v, out| out[0] = v[0] - 0.5,
            &[1e-7],
            &[10.0],
            &NewtonOptions::robust(),
            "linear-counted",
        )
        .unwrap();
        assert_eq!(scratch.backoffs(), before);
    }

    #[test]
    fn condition_guard_rejects_nearly_degenerate_jacobian() {
        // Jacobian ≈ diag(1, 1e-12): far above the singularity floor, but
        // condition ≈ 1e12 — past the configured 1e10 limit.
        let opts = NewtonOptions {
            max_condition: 1e10,
            ..NewtonOptions::robust()
        };
        let residual = |v: &[f64]| vec![v[0] - 1.0, 1e-12 * (v[1] - 1.0)];
        let mut x = [0.0, 0.0];
        let err = newton_solve(
            &mut x,
            residual,
            &[1e-4, 1e-4],
            &[10.0, 10.0],
            &opts,
            "degenerate",
        )
        .unwrap_err();
        assert!(matches!(err, SensorError::IllConditioned { .. }), "{err}");
        // Without the guard (default INFINITY) the same system solves.
        let opts = NewtonOptions {
            max_condition: f64::INFINITY,
            ..NewtonOptions::robust()
        };
        let mut x = [0.0, 0.0];
        newton_solve(
            &mut x,
            residual,
            &[1e-4, 1e-4],
            &[10.0, 10.0],
            &opts,
            "degenerate",
        )
        .unwrap();
    }

    #[test]
    fn lane_newton_matches_scalar_trajectories() {
        // Eight independent 2-unknown systems x·y = c, x + y = s with
        // per-lane constants: every lane must converge to the scalar
        // solver's answer bit for bit, in the same number of iterations.
        let mut c = [0.0; LANES];
        let mut s = [0.0; LANES];
        for l in 0..LANES {
            c[l] = 4.0 + l as f64;
            s[l] = 5.0 + 0.5 * l as f64;
        }
        let mut x = [[1.0; LANES], [4.0; LANES]];
        let status = newton_solve_lanes(
            &mut x,
            [true; LANES],
            |x, _, active, out| {
                for l in 0..LANES {
                    if !active[l] {
                        continue;
                    }
                    out[0][l] = x[0][l] * x[1][l] - c[l];
                    out[1][l] = x[0][l] + x[1][l] - s[l];
                }
            },
            &[1e-7, 1e-7],
            &[10.0, 10.0],
            "lane-2d",
        );
        for l in 0..LANES {
            let mut xs = [1.0, 4.0];
            let iters = newton_solve(
                &mut xs,
                |v| vec![v[0] * v[1] - c[l], v[0] + v[1] - s[l]],
                &[1e-7, 1e-7],
                &[10.0, 10.0],
                &NewtonOptions::default(),
                "scalar-2d",
            )
            .unwrap();
            assert_eq!(status[l], LaneSolve::Converged(iters), "lane {l}");
            assert_eq!(x[0][l].to_bits(), xs[0].to_bits(), "lane {l}");
            assert_eq!(x[1][l].to_bits(), xs[1].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn failed_lane_does_not_perturb_neighbors() {
        // Lane 3 has no root (x² + 1 = 0); every other lane solves x² = c.
        let mut c = [2.0; LANES];
        c[3] = -1.0;
        let mut x = [[1.0; LANES]];
        let status = newton_solve_lanes(
            &mut x,
            [true; LANES],
            |x, _, active, out| {
                for l in 0..LANES {
                    if !active[l] {
                        continue;
                    }
                    out[0][l] = x[0][l] * x[0][l] - c[l];
                }
            },
            &[1e-7],
            &[10.0],
            "lane-sqrt",
        );
        assert_eq!(status[3], LaneSolve::Failed);
        for l in 0..LANES {
            if l == 3 {
                continue;
            }
            let mut xs = [1.0];
            let iters = newton_solve(
                &mut xs,
                |v| vec![v[0] * v[0] - c[l]],
                &[1e-7],
                &[10.0],
                &NewtonOptions::default(),
                "scalar-sqrt",
            )
            .unwrap();
            assert_eq!(status[l], LaneSolve::Converged(iters), "lane {l}");
            assert_eq!(x[0][l].to_bits(), xs[0].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn masked_lanes_stay_untouched() {
        let mut active = [true; LANES];
        active[0] = false;
        active[7] = false;
        let mut x = [[9.0; LANES]];
        let status = newton_solve_lanes(
            &mut x,
            active,
            |x, _, active, out| {
                for l in 0..LANES {
                    if !active[l] {
                        continue;
                    }
                    out[0][l] = x[0][l] - 1.0;
                }
            },
            &[1e-7],
            &[100.0],
            "lane-masked",
        );
        assert_eq!(status[0], LaneSolve::Masked);
        assert_eq!(status[7], LaneSolve::Masked);
        assert_eq!(x[0][0], 9.0);
        assert_eq!(x[0][7], 9.0);
        for l in 1..7 {
            assert!(matches!(status[l], LaneSolve::Converged(_)));
            assert!((x[0][l] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn default_options_remain_plain_newton() {
        // The default personality must not grow new behavior: adaptive off,
        // no condition guard.
        let d = NewtonOptions::default();
        assert!(!d.adaptive);
        assert_eq!(d.max_condition, f64::INFINITY);
        assert_eq!(d.damping, 1.0);
    }
}
