//! Small dense damped Newton–Raphson solver used by the decoupling math.
//!
//! The systems are tiny (1–4 unknowns), so a straightforward
//! partial-pivoting Gaussian elimination and forward-difference Jacobians
//! are entirely adequate.

use crate::error::SensorError;

/// Options controlling a Newton solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations before reporting divergence.
    pub max_iterations: usize,
    /// Convergence tolerance on the residual ∞-norm.
    pub tolerance: f64,
    /// Per-component step clamp (same length as the unknown vector, applied
    /// element-wise from `step_limits`).
    pub damping: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 60,
            tolerance: 1e-10,
            damping: 1.0,
        }
    }
}

/// Solves `A·x = b` in place by Gaussian elimination with partial pivoting.
/// `a` is row-major `n × n`.
///
/// # Errors
///
/// Returns [`SensorError::SingularJacobian`] if a pivot is numerically zero.
pub fn solve_linear(
    a: &mut [f64],
    b: &mut [f64],
    n: usize,
    what: &'static str,
) -> Result<(), SensorError> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col].abs() < 1e-300 {
            return Err(SensorError::SingularJacobian { what });
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate.
        for row in col + 1..n {
            let factor = a[row * n + col] / a[col * n + col];
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in col + 1..n {
            sum -= a[col * n + k] * b[k];
        }
        b[col] = sum / a[col * n + col];
    }
    Ok(())
}

/// Damped Newton–Raphson on `residual(x) = 0`.
///
/// * `x` — initial guess, updated in place to the solution.
/// * `residual` — returns the residual vector (same length as `x`).
/// * `fd_steps` — per-component forward-difference steps for the Jacobian.
/// * `step_limits` — per-component clamp on each Newton update.
///
/// Returns the number of iterations used.
///
/// # Errors
///
/// * [`SensorError::SolverDiverged`] if the residual norm does not reach
///   `opts.tolerance` within `opts.max_iterations`;
/// * [`SensorError::SingularJacobian`] if the Jacobian becomes singular.
pub fn newton_solve<F>(
    x: &mut [f64],
    mut residual: F,
    fd_steps: &[f64],
    step_limits: &[f64],
    opts: &NewtonOptions,
    what: &'static str,
) -> Result<usize, SensorError>
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    let n = x.len();
    debug_assert_eq!(fd_steps.len(), n);
    debug_assert_eq!(step_limits.len(), n);

    let mut jac = vec![0.0; n * n];
    let mut xp = vec![0.0; n];

    for iter in 1..=opts.max_iterations {
        let r = residual(x);
        let norm = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if norm < opts.tolerance {
            return Ok(iter);
        }
        // Forward-difference Jacobian.
        for j in 0..n {
            xp.copy_from_slice(x);
            xp[j] += fd_steps[j];
            let rp = residual(&xp);
            for i in 0..n {
                jac[i * n + j] = (rp[i] - r[i]) / fd_steps[j];
            }
        }
        let mut rhs = r.clone();
        solve_linear(&mut jac, &mut rhs, n, what)?;
        for j in 0..n {
            let step = (opts.damping * rhs[j]).clamp(-step_limits[j], step_limits[j]);
            x[j] -= step;
        }
    }
    let final_norm = residual(x).iter().fold(0.0f64, |m, v| m.max(v.abs()));
    Err(SensorError::SolverDiverged {
        what,
        iterations: opts.max_iterations,
        residual: final_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_solve_2x2() {
        // [2 1; 1 3]·x = [5; 10] → x = [1; 3]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        solve_linear(&mut a, &mut b, 2, "test").unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        solve_linear(&mut a, &mut b, 2, "test").unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_error() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            solve_linear(&mut a, &mut b, 2, "test"),
            Err(SensorError::SingularJacobian { .. })
        ));
    }

    #[test]
    fn newton_scalar_sqrt() {
        // x² = 2
        let mut x = [1.0];
        let iters = newton_solve(
            &mut x,
            |v| vec![v[0] * v[0] - 2.0],
            &[1e-7],
            &[10.0],
            &NewtonOptions::default(),
            "sqrt",
        )
        .unwrap();
        assert!((x[0] - 2.0f64.sqrt()).abs() < 1e-8);
        assert!(iters < 20);
    }

    #[test]
    fn newton_2d_nonlinear() {
        // x·y = 6, x + y = 5 → (2, 3) or (3, 2).
        let mut x = [1.0, 4.0];
        newton_solve(
            &mut x,
            |v| vec![v[0] * v[1] - 6.0, v[0] + v[1] - 5.0],
            &[1e-7, 1e-7],
            &[10.0, 10.0],
            &NewtonOptions::default(),
            "2d",
        )
        .unwrap();
        assert!((x[0] * x[1] - 6.0).abs() < 1e-8);
        assert!((x[0] + x[1] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn newton_respects_step_limits() {
        // Start far away; tight clamp forces many small steps but still
        // converges.
        let mut x = [100.0];
        let iters = newton_solve(
            &mut x,
            |v| vec![v[0] - 1.0],
            &[1e-7],
            &[2.0],
            &NewtonOptions {
                max_iterations: 200,
                ..NewtonOptions::default()
            },
            "clamped",
        )
        .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!(iters >= 50, "clamp forces ≥ (100-1)/2 iterations");
    }

    #[test]
    fn newton_divergence_reported() {
        // Residual never goes to zero.
        let mut x = [0.0];
        let err = newton_solve(
            &mut x,
            |v| vec![v[0].powi(2) + 1.0],
            &[1e-7],
            &[1.0],
            &NewtonOptions {
                max_iterations: 10,
                ..NewtonOptions::default()
            },
            "impossible",
        )
        .unwrap_err();
        assert!(matches!(err, SensorError::SolverDiverged { .. }));
    }

    #[test]
    fn newton_4x4_linear_system_one_step() {
        let mut x = [0.0; 4];
        let target = [1.0, -2.0, 3.0, 0.5];
        newton_solve(
            &mut x,
            |v| (0..4).map(|i| v[i] - target[i]).collect(),
            &[1e-6; 4],
            &[100.0; 4],
            &NewtonOptions::default(),
            "4x4",
        )
        .unwrap();
        for i in 0..4 {
            assert!((x[i] - target[i]).abs() < 1e-9);
        }
    }
}
