//! The self-calibrated process–temperature sensor.
//!
//! One sensor instance owns a ring-oscillator bank, a gated counter with an
//! auto-ranging prescaler, fixed-point calibration registers, and the
//! decoupling solver. Its life cycle mirrors the silicon:
//!
//! 1. **Self-calibration** ([`PtSensor::calibrate`]) — at boot, with the die
//!    assumed to sit at the known ambient reference, each PSRO is measured
//!    at two supplies and the 4×4 Newton decoupling extracts
//!    `(ΔVtn, ΔVtp, µn, µp)`; the TSRO is then measured once to absorb its
//!    own local mismatch into a stored log-domain correction.
//! 2. **Conversion** ([`PtSensor::read`]) — every reading measures the TSRO
//!    and both PSROs at the low supply, then jointly solves
//!    `(T, ΔVtn, ΔVtp)` with a 3×3 Newton decoupling (the TSRO row carries
//!    temperature, the PSRO rows carry the thresholds), so even large
//!    post-calibration drift — TSV stress, BTI/HCI aging — is tracked.
//!    Results are quantized through the Q-format output registers and every
//!    component's energy is charged to an [`EnergyLedger`].
//!
//! ## Hardening
//!
//! The controller distrusts every raw number it handles
//! ([`HardeningSpec`]): counts are checked against design-time plausibility
//! bands, optionally majority-voted across redundant oscillator replicas,
//! and re-measured with a widened window when implausible; calibration
//! registers carry parity; the decoupling solver escalates from the plain
//! Newton tuning through [`NewtonOptions::robust`] to a bisection against
//! the characterized response; a lost PSRO bank degrades the sensor to a
//! temperature-only output instead of killing it. Every result carries a
//! [`Health`] record — a corrupted output is either an error or flagged,
//! never silent. Faults are injected with [`PtSensor::inject_faults`]; with
//! no faults and the default single-replica hardening the datapath is
//! bit-identical to the unhardened sensor.

use crate::bank::{BankSpec, RoBank, RoClass};
use crate::calib::Calibration;
use crate::error::SensorError;
use crate::golden::{CharacterizationSpace, GoldenModel};
use crate::health::{Health, HealthEvent};
use crate::newton::{newton_solve, NewtonOptions};
use ptsim_circuit::counter::{auto_count, GatedCounter};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_circuit::error::CircuitError;
use ptsim_circuit::fixed::{Fixed, QFormat};
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Hertz, Joule, Volt};
use ptsim_faults::{Channel, FaultPlan};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_rng::Rng;

/// Process/temperature envelope the plausibility bands are evaluated over —
/// the design-time characterization corners, deliberately wider than any
/// die the variation model can produce. `spec.temp_range` is the
/// *application's* acceptance range for solved temperatures; the bands must
/// not reject a frequency a real out-of-range die could produce, or the
/// solve-range guard would never fire.
const BAND_TEMPS: (f64, f64) = (-55.0, 150.0);
const BAND_DVT: f64 = 0.045;
const BAND_MU: (f64, f64) = (0.8, 1.25);
/// Step of the characterized-response bisection grid used as the last-ditch
/// solver fallback, in °C.
const ROM_GRID_STEP: f64 = 0.25;

/// Robustness knobs of the sensor controller.
///
/// The defaults describe the paper's baseline sensor: one oscillator per
/// channel, two widened-window retries, and plausibility margins wide
/// enough that no healthy die is ever flagged — the hardened datapath is
/// bit-identical to the unhardened one until something actually fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningSpec {
    /// Redundant oscillator+counter replicas per channel (majority-voted).
    pub replicas: usize,
    /// Widened-window re-measurements before a channel is declared lost.
    pub max_retries: usize,
    /// Window stretch factor for retry measurements.
    pub retry_window_scale: u64,
    /// Plausibility band lower edge, as a fraction of the slowest
    /// design-corner frequency.
    pub band_margin_low: f64,
    /// Plausibility band upper edge, as a multiple of the fastest
    /// design-corner frequency.
    pub band_margin_high: f64,
    /// Relative deviation from the replica median beyond which a replica is
    /// outvoted.
    pub replica_outlier_rel: f64,
    /// Relative spread of the voted replicas beyond which the channel is
    /// flagged (excess jitter / marginal supply).
    pub replica_spread_rel: f64,
    /// Largest plausible post-calibration threshold drift; solved drifts
    /// beyond it flag the reading.
    pub max_drift: Volt,
}

impl HardeningSpec {
    /// Baseline: single replica, guards only.
    #[must_use]
    pub fn baseline() -> Self {
        HardeningSpec {
            replicas: 1,
            max_retries: 2,
            retry_window_scale: 4,
            band_margin_low: 0.25,
            band_margin_high: 6.0,
            replica_outlier_rel: 0.02,
            replica_spread_rel: 5e-3,
            max_drift: Volt(0.08),
        }
    }

    /// Triple modular redundancy on every channel, otherwise baseline.
    #[must_use]
    pub fn redundant() -> Self {
        HardeningSpec {
            replicas: 3,
            ..HardeningSpec::baseline()
        }
    }
}

impl Default for HardeningSpec {
    fn default() -> Self {
        HardeningSpec::baseline()
    }
}

/// Full hardware specification of one sensor instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    /// Oscillator bank design.
    pub bank: BankSpec,
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Gating window in reference-clock cycles.
    pub window_cycles: u64,
    /// Reference clock (crystal / stable system clock).
    pub ref_clock: Hertz,
    /// Output/coefficient register format.
    pub qformat: QFormat,
    /// Temperature the self-calibration assumes the die is at.
    pub calib_temp: Celsius,
    /// Valid solve range — readings outside are rejected.
    pub temp_range: (Celsius, Celsius),
    /// Energy charged per counted edge (counter + prescaler toggling).
    pub counter_energy_per_count: Joule,
    /// Controller overhead cycles per conversion (FSM, muxing, register IO).
    pub controller_cycles: u64,
    /// Datapath cycles per Newton iteration.
    pub solver_cycles_per_iteration: u64,
    /// Energy per controller/datapath cycle.
    pub digital_energy_per_cycle: Joule,
    /// Robustness configuration of the controller.
    pub hardening: HardeningSpec,
}

impl SensorSpec {
    /// Reference 65 nm sensor: 16-bit counters, ~12 µs window on a 32 MHz
    /// reference, Q16.16 registers, calibration at 25 °C.
    #[must_use]
    pub fn default_65nm() -> Self {
        SensorSpec {
            bank: BankSpec::default_65nm(),
            counter_bits: 16,
            window_cycles: 448, // 14 µs @ 32 MHz
            ref_clock: Hertz(32.0e6),
            qformat: QFormat::Q16_16,
            calib_temp: Celsius(25.0),
            temp_range: (Celsius(-55.0), Celsius(150.0)),
            counter_energy_per_count: Joule(18e-15),
            controller_cycles: 680,
            solver_cycles_per_iteration: 192,
            digital_energy_per_cycle: Joule(85e-15),
            hardening: HardeningSpec::baseline(),
        }
    }
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec::default_65nm()
    }
}

/// The physical situation a sensor measurement happens in.
#[derive(Debug, Clone, Copy)]
pub struct SensorInputs<'a> {
    /// The die (process realization) the sensor is fabricated on.
    pub die: &'a DieSample,
    /// Bank centre location on the die.
    pub site: DieSite,
    /// True junction temperature at the sensor.
    pub temp: Celsius,
    /// Externally-imposed NMOS threshold shift (e.g. TSV stress).
    pub extra_vtn: Volt,
    /// Externally-imposed PMOS threshold shift.
    pub extra_vtp: Volt,
}

impl<'a> SensorInputs<'a> {
    /// Inputs with no external stress.
    #[must_use]
    pub fn new(die: &'a DieSample, site: DieSite, temp: Celsius) -> Self {
        SensorInputs {
            die,
            site,
            temp,
            extra_vtn: Volt::ZERO,
            extra_vtp: Volt::ZERO,
        }
    }

    /// Adds externally-imposed threshold shifts (e.g. from
    /// `ptsim_tsv::StackTopology::stress_vt_shift_at`).
    #[must_use]
    pub fn with_stress(mut self, extra_vtn: Volt, extra_vtp: Volt) -> Self {
        self.extra_vtn = extra_vtn;
        self.extra_vtp = extra_vtp;
        self
    }
}

/// One conversion result.
#[derive(Debug, Clone, PartialEq)]
pub struct Reading {
    /// Solved temperature (quantized through the output register).
    pub temperature: Celsius,
    /// Tracked NMOS threshold shift. Frozen at the calibration value when
    /// the sensor is degraded to temperature-only output.
    pub d_vtn: Volt,
    /// Tracked PMOS threshold shift (see [`Reading::d_vtn`]).
    pub d_vtp: Volt,
    /// Per-component energy of this conversion.
    pub energy: EnergyLedger,
    /// Measured (quantized) frequencies `(f_tsro, f_psro_n, f_psro_p)`.
    /// A lost channel reports `0 Hz`.
    pub raw_frequencies: (Hertz, Hertz, Hertz),
    /// Total Newton iterations spent in the solves (model evaluations of
    /// the bisection grid, if the ROM fallback ran).
    pub solver_iterations: usize,
    /// Self-diagnosis record of this conversion.
    pub health: Health,
}

impl Reading {
    /// Total conversion energy.
    #[must_use]
    pub fn energy_total(&self) -> Joule {
        self.energy.total()
    }
}

/// Outcome of a self-calibration pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// The stored calibration.
    pub calibration: Calibration,
    /// Energy spent by the calibration pass.
    pub energy: EnergyLedger,
    /// Newton iterations of the 4×4 decoupling solve.
    pub solver_iterations: usize,
    /// Self-diagnosis record of the calibration pass.
    pub health: Health,
}

/// Design-time plausibility band of one oscillator/supply pair.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Band {
    class: RoClass,
    vdd: Volt,
    lo: Hertz,
    hi: Hertz,
}

impl Band {
    fn contains(&self, f: Hertz) -> bool {
        f.0 >= self.lo.0 && f.0 <= self.hi.0
    }
}

/// The on-chip self-calibrated process–temperature sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct PtSensor {
    tech: Technology,
    spec: SensorSpec,
    bank: RoBank,
    /// When present, calibration/conversion math runs on the design-time
    /// characterized polynomial model (hardware-faithful) instead of the
    /// analytic compact model.
    golden: Option<GoldenModel>,
    calibration: Option<Calibration>,
    /// Design-time plausibility bands, one per measurement-plan pair.
    bands: Vec<Band>,
    /// Active injected faults (empty in a healthy sensor).
    faults: FaultPlan,
}

/// What one replica measurement targets: which oscillator, at which supply,
/// which physical replica, and how far the gate window is widened.
#[derive(Debug, Clone, Copy)]
struct ReplicaMeasurement {
    class: RoClass,
    vdd: Volt,
    replica: usize,
    window_scale: u64,
}

fn fault_channel(class: RoClass) -> Channel {
    match class {
        RoClass::Tsro => Channel::Tsro,
        RoClass::PsroN => Channel::PsroN,
        RoClass::PsroP => Channel::PsroP,
    }
}

fn solver_failed(e: &SensorError) -> bool {
    matches!(
        e,
        SensorError::SolverDiverged { .. }
            | SensorError::SingularJacobian { .. }
            | SensorError::IllConditioned { .. }
    )
}

/// Median of a non-empty, sorted slice: the exact middle sample for odd
/// lengths (bit-preserving), the mean of the two middles for even lengths.
fn sorted_median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

impl PtSensor {
    /// Builds a sensor instance for `tech`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for an empty/inverted
    /// `temp_range` or nonsensical hardening knobs, and propagates
    /// bank/counter construction errors for invalid specs.
    pub fn new(tech: Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        if spec.temp_range.0 .0 >= spec.temp_range.1 .0 {
            return Err(SensorError::InvalidConfig {
                name: "temp_range",
                value: spec.temp_range.0 .0,
            });
        }
        let h = spec.hardening;
        if h.replicas == 0 || h.replicas > 9 {
            return Err(SensorError::InvalidConfig {
                name: "hardening.replicas",
                value: h.replicas as f64,
            });
        }
        if h.retry_window_scale == 0 {
            return Err(SensorError::InvalidConfig {
                name: "hardening.retry_window_scale",
                value: 0.0,
            });
        }
        if !(h.band_margin_low > 0.0 && h.band_margin_low <= 1.0) {
            return Err(SensorError::InvalidConfig {
                name: "hardening.band_margin_low",
                value: h.band_margin_low,
            });
        }
        if h.band_margin_high < 1.0 {
            return Err(SensorError::InvalidConfig {
                name: "hardening.band_margin_high",
                value: h.band_margin_high,
            });
        }
        // Validate counter/bank parameters eagerly (including the widest
        // retry window the controller may configure).
        let _ = GatedCounter::new(spec.counter_bits, spec.window_cycles)?;
        let _ = GatedCounter::new(spec.counter_bits, spec.window_cycles * h.retry_window_scale)?;
        let bank = RoBank::new(&tech, spec.bank)?;
        let bands = Self::design_bands(&tech, &bank, &spec);
        Ok(PtSensor {
            tech,
            spec,
            bank,
            golden: None,
            calibration: None,
            bands,
            faults: FaultPlan::new(),
        })
    }

    /// Evaluates the analytic bank model over the design-corner envelope
    /// and derives one `[margin_low · min, margin_high · max]` plausibility
    /// band per measurement-plan pair.
    fn design_bands(tech: &Technology, bank: &RoBank, spec: &SensorSpec) -> Vec<Band> {
        let pairs = [
            (RoClass::PsroN, spec.bank.vdd_high),
            (RoClass::PsroN, spec.bank.vdd_low),
            (RoClass::PsroP, spec.bank.vdd_high),
            (RoClass::PsroP, spec.bank.vdd_low),
            (RoClass::Tsro, spec.bank.vdd_tsro),
        ];
        let h = spec.hardening;
        pairs
            .iter()
            .map(|&(class, vdd)| {
                let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
                for &temp in &[BAND_TEMPS.0, BAND_TEMPS.1] {
                    for &dvtn in &[-BAND_DVT, BAND_DVT] {
                        for &dvtp in &[-BAND_DVT, BAND_DVT] {
                            for &mu_n in &[BAND_MU.0, BAND_MU.1] {
                                for &mu_p in &[BAND_MU.0, BAND_MU.1] {
                                    let env = CmosEnv {
                                        temp: Celsius(temp),
                                        d_vtn: Volt(dvtn),
                                        d_vtp: Volt(dvtp),
                                        mu_n,
                                        mu_p,
                                    };
                                    let f = bank.frequency(tech, class, vdd, &env).0;
                                    lo = lo.min(f);
                                    hi = hi.max(f);
                                }
                            }
                        }
                    }
                }
                Band {
                    class,
                    vdd,
                    lo: Hertz(h.band_margin_low * lo),
                    hi: Hertz(h.band_margin_high * hi),
                }
            })
            .collect()
    }

    fn band_for(&self, class: RoClass, vdd: Volt) -> Band {
        *self
            .bands
            .iter()
            .find(|b| b.class == class && b.vdd.0.to_bits() == vdd.0.to_bits())
            .expect("measurement plan pairs always have a design band")
    }

    /// Switches the on-chip math to a design-time characterized polynomial
    /// model (what real hardware evaluates), adding its fit error to the
    /// error budget. Invalidates any previous calibration.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn use_characterized_model(
        &mut self,
        space: CharacterizationSpace,
    ) -> Result<(), SensorError> {
        self.golden = Some(GoldenModel::characterize(
            &self.tech,
            self.spec.bank,
            space,
        )?);
        self.calibration = None;
        Ok(())
    }

    /// The characterized model, if enabled.
    #[must_use]
    pub fn characterized_model(&self) -> Option<&GoldenModel> {
        self.golden.as_ref()
    }

    /// On-chip model prediction of `ln f` for an oscillator/supply pair.
    fn model_ln_f(&self, class: RoClass, vdd: Volt, env: &CmosEnv) -> f64 {
        match &self.golden {
            Some(g) => g
                .ln_frequency(class, vdd, env)
                .expect("measurement plan pairs are always characterized"),
            None => self.bank.frequency(&self.tech, class, vdd, env).0.ln(),
        }
    }

    /// Sensor spec.
    #[must_use]
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// Oscillator bank.
    #[must_use]
    pub fn bank(&self) -> &RoBank {
        &self.bank
    }

    /// Technology the sensor is built in.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Stored calibration, if the sensor has been calibrated.
    #[must_use]
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Installs an externally-stored calibration (e.g. replayed from
    /// non-volatile memory).
    pub fn set_calibration(&mut self, calibration: Calibration) {
        self.calibration = Some(calibration);
    }

    /// Injects a set of hardware faults. Calibration-register SEUs strike
    /// immediately (if a calibration is stored); every other fault corrupts
    /// subsequent measurements at its physical point of action.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        for (register, bit) in plan.calib_seus() {
            if let Some(cal) = self.calibration.as_mut() {
                cal.inject_bit_flip(register, bit);
            }
        }
        self.faults = plan;
    }

    /// Removes all injected faults (register corruption persists until a
    /// recalibration rewrites the registers).
    pub fn clear_faults(&mut self) {
        self.faults = FaultPlan::new();
    }

    /// The active fault plan (empty when healthy).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Checks calibration-register parity and, on a mismatch, recovers by
    /// re-running the self-calibration. Returns the fresh outcome (with a
    /// [`HealthEvent::ParityScrubbed`] record) if a scrub was needed.
    ///
    /// # Errors
    ///
    /// Propagates recalibration failures.
    pub fn parity_scrub<R: Rng + ?Sized>(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<Option<CalibrationOutcome>, SensorError> {
        let mask = match &self.calibration {
            Some(cal) => cal.parity_errors(),
            None => return Ok(None),
        };
        if mask == 0 {
            return Ok(None);
        }
        let mut outcome = self.calibrate(inputs, rng)?;
        outcome
            .health
            .record(HealthEvent::ParityScrubbed { registers: mask });
        Ok(Some(outcome))
    }

    fn die_env(&self, class: RoClass, inputs: &SensorInputs<'_>, temp: Celsius) -> CmosEnv {
        let site = self.bank.site_of(class, inputs.site);
        inputs
            .die
            .env_at_with(site, temp, inputs.extra_vtn, inputs.extra_vtp)
    }

    /// Model environment used by the decoupling solver (golden model plus
    /// hypothesized process state).
    fn model_env(d_vtn: f64, d_vtp: f64, mu_n: f64, mu_p: f64, temp: Celsius) -> CmosEnv {
        CmosEnv {
            temp,
            d_vtn: Volt(d_vtn),
            d_vtp: Volt(d_vtp),
            mu_n,
            mu_p,
        }
    }

    /// Measures one oscillator replica: quantizes the true frequency
    /// through the auto-ranged prescaler + gated counter and charges
    /// energy. Injected faults corrupt the signal at their physical points:
    /// the ring frequency before counting, the effective gate window, and
    /// the raw count before reconstruction.
    fn measure_replica<R: Rng + ?Sized>(
        &self,
        m: &ReplicaMeasurement,
        env: &CmosEnv,
        rng: &mut R,
        ledger: &mut EnergyLedger,
    ) -> Result<Hertz, SensorError> {
        let ReplicaMeasurement {
            class,
            vdd,
            replica,
            window_scale,
        } = *m;
        let counter = GatedCounter::new(
            self.spec.counter_bits,
            self.spec.window_cycles * window_scale,
        )?;
        let ring = self.bank.ring(class).with_vdd(vdd);
        let f_true = ring.frequency(&self.tech, env);
        let phase: f64 = rng.gen();
        let f_in = if self.faults.is_empty() {
            f_true
        } else {
            let corrupted =
                self.faults
                    .frequency_effect(fault_channel(class), replica, f_true, rng);
            // A drifted reference clock mis-sizes every gate window, which
            // reads as a uniform scale on all reconstructed frequencies.
            Hertz(corrupted.0 * self.faults.ref_clock_factor())
        };
        let (counted, prescaler) = auto_count(f_in, &counter, self.spec.ref_clock, phase)?;
        let counted = if self.faults.is_empty() {
            counted
        } else {
            self.faults
                .count_effect(replica, counted, counter.max_count(), rng)
        };
        let f_meas = prescaler.undo(counter.frequency_from_count(counted, self.spec.ref_clock));

        // Energy: oscillator running for the window + counted edges.
        let window = counter.window(self.spec.ref_clock);
        ledger.add(class.name(), ring.run_energy(&self.tech, env, window));
        ledger.add(
            "counters",
            Joule(self.spec.counter_energy_per_count.0 * counted as f64),
        );
        Ok(f_meas)
    }

    /// Majority-votes one round of replica samples (`None` = implausible or
    /// saturated). Returns the voted frequency, or `None` when no strict
    /// majority of trustworthy replicas exists.
    fn vote(
        &self,
        channel: &'static str,
        samples: &[Option<Hertz>],
        health: &mut Health,
    ) -> Option<Hertz> {
        let h = self.spec.hardening;
        let n = samples.len();
        let plausible: Vec<(usize, f64)> = samples
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|f| (i, f.0)))
            .collect();
        if plausible.len() * 2 <= n {
            return None;
        }
        let mut values: Vec<f64> = plausible.iter().map(|&(_, f)| f).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("band-checked samples are finite"));
        let med = sorted_median(&values);

        let mut inliers: Vec<f64> = Vec::with_capacity(plausible.len());
        for &(i, f) in &plausible {
            if (f - med).abs() <= h.replica_outlier_rel * med.abs() {
                inliers.push(f);
            } else {
                health.record(HealthEvent::ReplicaOutvoted {
                    channel,
                    replica: i,
                });
            }
        }
        if inliers.len() * 2 <= n {
            return None;
        }
        inliers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let voted = sorted_median(&inliers);
        let spread = (inliers[inliers.len() - 1] - inliers[0]) / voted;
        if spread > h.replica_spread_rel {
            health.record(HealthEvent::ReplicaSpread {
                channel,
                spread_rel: spread,
            });
        }
        Some(Hertz(voted))
    }

    /// Measures one channel with the full hardening stack: per-replica
    /// plausibility check, majority vote, and bounded widened-window
    /// retries. `Ok(None)` means the channel is lost (no trustworthy
    /// majority after every retry).
    fn measure_channel<R: Rng + ?Sized>(
        &self,
        class: RoClass,
        vdd: Volt,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
        ledger: &mut EnergyLedger,
        health: &mut Health,
    ) -> Result<Option<Hertz>, SensorError> {
        let h = self.spec.hardening;
        let name = class.name();
        let local_temp = self.faults.local_temperature(inputs.temp);
        let env = self.die_env(class, inputs, local_temp);
        let band = self.band_for(class, vdd);

        let mut attempt = 0usize;
        let mut window_scale = 1u64;
        loop {
            let mut samples: Vec<Option<Hertz>> = Vec::with_capacity(h.replicas);
            for replica in 0..h.replicas {
                let m = ReplicaMeasurement {
                    class,
                    vdd,
                    replica,
                    window_scale,
                };
                match self.measure_replica(&m, &env, rng, ledger) {
                    Ok(f) => {
                        if band.contains(f) {
                            samples.push(Some(f));
                        } else {
                            health.record(HealthEvent::ImplausibleReading {
                                channel: name,
                                replica,
                            });
                            samples.push(None);
                        }
                    }
                    Err(SensorError::Circuit(CircuitError::CounterSaturated { .. })) => {
                        health.record(HealthEvent::CounterSaturated {
                            channel: name,
                            replica,
                        });
                        samples.push(None);
                    }
                    Err(e) => return Err(e),
                }
            }
            if let Some(f) = self.vote(name, &samples, health) {
                if attempt > 0 {
                    health.record(HealthEvent::Recovered { channel: name });
                }
                return Ok(Some(f));
            }
            if attempt >= h.max_retries {
                health.record(HealthEvent::ChannelLost { channel: name });
                return Ok(None);
            }
            attempt += 1;
            window_scale = h.retry_window_scale;
            health.record(HealthEvent::RetriedWindow {
                channel: name,
                window_scale,
            });
            // Retry control overhead (re-arming the gate and range logic).
            self.charge_digital(ledger, "retry", self.spec.controller_cycles / 4);
        }
    }

    fn charge_digital(&self, ledger: &mut EnergyLedger, name: &str, cycles: u64) {
        ledger.add(
            name,
            Joule(self.spec.digital_energy_per_cycle.0 * cycles as f64),
        );
    }

    /// The 4×4 boot-time decoupling solve.
    fn solve_calibration(
        &self,
        plan: &[(RoClass, Volt); 4],
        measured: &[f64; 4],
        opts: &NewtonOptions,
    ) -> Result<([f64; 4], usize), SensorError> {
        let t_cal = self.spec.calib_temp;
        let mut x = [0.0, 0.0, 1.0, 1.0];
        let iters = newton_solve(
            &mut x,
            |v: &[f64]| -> Vec<f64> {
                let env = PtSensor::model_env(v[0], v[1], v[2], v[3], t_cal);
                plan.iter()
                    .zip(measured)
                    .map(|((class, vdd), m)| self.model_ln_f(*class, *vdd, &env) - m.ln())
                    .collect()
            },
            &[1e-4, 1e-4, 1e-3, 1e-3],
            &[0.04, 0.04, 0.15, 0.15],
            opts,
            "calibration decoupling",
        )?;
        Ok((x, iters))
    }

    /// Self-calibration pass.
    ///
    /// The controller *assumes* the die sits at `spec.calib_temp`; the
    /// caller provides the *true* conditions in `inputs`, so boot-time
    /// temperature error is faithfully propagated into the stored state.
    /// If the plain decoupling solve fails, the robust tuning is tried
    /// before giving up (recorded in the outcome's health).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::ChannelFailed`] if any oscillator produces no
    /// plausible measurement, solver errors if the 4×4 decoupling diverges
    /// under both tunings, and measurement/construction errors from the
    /// circuit blocks.
    pub fn calibrate<R: Rng + ?Sized>(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<CalibrationOutcome, SensorError> {
        let mut ledger = EnergyLedger::new();
        let mut health = Health::nominal();
        let spec = self.spec;

        // Four PSRO measurements: each polarity at both supplies.
        let plan = [
            (RoClass::PsroN, spec.bank.vdd_high),
            (RoClass::PsroN, spec.bank.vdd_low),
            (RoClass::PsroP, spec.bank.vdd_high),
            (RoClass::PsroP, spec.bank.vdd_low),
        ];
        let mut measured = [0.0f64; 4];
        for (slot, (class, vdd)) in plan.iter().enumerate() {
            let f = self
                .measure_channel(*class, *vdd, inputs, rng, &mut ledger, &mut health)?
                .ok_or(SensorError::ChannelFailed {
                    channel: class.name(),
                })?;
            measured[slot] = f.0;
        }

        // 4×4 decoupling at the assumed calibration temperature.
        let (x, iters) = match self.solve_calibration(&plan, &measured, &NewtonOptions::default()) {
            Ok(solved) => solved,
            Err(e) if solver_failed(&e) => {
                health.record(HealthEvent::SolverRetuned {
                    what: "calibration decoupling",
                });
                self.solve_calibration(&plan, &measured, &NewtonOptions::robust())?
            }
            Err(e) => return Err(e),
        };
        self.charge_digital(
            &mut ledger,
            "solver",
            iters as u64 * spec.solver_cycles_per_iteration,
        );

        // TSRO reference: absorb its local mismatch into a stored log-scale.
        let f_t = self
            .measure_channel(
                RoClass::Tsro,
                spec.bank.vdd_tsro,
                inputs,
                rng,
                &mut ledger,
                &mut health,
            )?
            .ok_or(SensorError::ChannelFailed {
                channel: RoClass::Tsro.name(),
            })?;
        let model_env = PtSensor::model_env(x[0], x[1], x[2], x[3], spec.calib_temp);
        let ln_f_t_model = self.model_ln_f(RoClass::Tsro, spec.bank.vdd_tsro, &model_env);
        let ln_scale = f_t.0.ln() - ln_f_t_model;

        self.charge_digital(&mut ledger, "controller", spec.controller_cycles * 2);

        let calibration = Calibration::store(
            Volt(x[0]),
            Volt(x[1]),
            x[2],
            x[3],
            ln_scale,
            spec.calib_temp,
            spec.qformat,
        );
        self.calibration = Some(calibration);
        Ok(CalibrationOutcome {
            calibration,
            energy: ledger,
            solver_iterations: iters,
            health,
        })
    }

    /// The joint 3×3 conversion solve: `(T, ΔVtn, ΔVtp)` from
    /// `(f_t, f_n, f_p)`.
    fn solve_conversion(
        &self,
        cal: &Calibration,
        f_t: Hertz,
        f_n: Hertz,
        f_p: Hertz,
        opts: &NewtonOptions,
    ) -> Result<([f64; 3], usize), SensorError> {
        let spec = self.spec;
        let ln_scale = cal.ln_tsro_scale();
        let (mu_n, mu_p) = (cal.mu_n(), cal.mu_p());
        // The TSRO row dominates temperature and the PSRO rows dominate the
        // thresholds, so the Jacobian is diagonally strong and quadratic
        // convergence holds even for large post-calibration drift (aging,
        // stress).
        let mut x = [cal.calib_temp().0, cal.d_vtn().0, cal.d_vtp().0];
        let iters = newton_solve(
            &mut x,
            |v| {
                let env = PtSensor::model_env(v[1], v[2], mu_n, mu_p, Celsius(v[0]));
                vec![
                    self.model_ln_f(RoClass::Tsro, spec.bank.vdd_tsro, &env) - f_t.0.ln()
                        + ln_scale,
                    self.model_ln_f(RoClass::PsroN, spec.bank.vdd_low, &env) - f_n.0.ln(),
                    self.model_ln_f(RoClass::PsroP, spec.bank.vdd_low, &env) - f_p.0.ln(),
                ]
            },
            &[0.01, 1e-4, 1e-4],
            &[40.0, 0.03, 0.03],
            opts,
            "conversion decoupling",
        )?;
        Ok((x, iters))
    }

    /// TSRO-row residual at hypothesized temperature `t`, with the process
    /// state frozen at the stored calibration.
    fn tsro_residual(&self, cal: &Calibration, f_t: Hertz, t: f64) -> f64 {
        let env = PtSensor::model_env(
            cal.d_vtn().0,
            cal.d_vtp().0,
            cal.mu_n(),
            cal.mu_p(),
            Celsius(t),
        );
        self.model_ln_f(RoClass::Tsro, self.spec.bank.vdd_tsro, &env) - f_t.0.ln()
            + cal.ln_tsro_scale()
    }

    /// Temperature-only solve on the TSRO row (1×1 Newton, escalating to
    /// the robust tuning and finally the characterized-response bisection).
    /// Returns `(temperature, solver work)`.
    fn solve_temperature_only(
        &self,
        cal: &Calibration,
        f_t: Hertz,
        health: &mut Health,
    ) -> Result<(f64, usize), SensorError> {
        let run = |opts: &NewtonOptions| -> Result<(f64, usize), SensorError> {
            let mut x = [cal.calib_temp().0];
            let iters = newton_solve(
                &mut x,
                |v| vec![self.tsro_residual(cal, f_t, v[0])],
                &[0.01],
                &[40.0],
                opts,
                "temperature-only decoupling",
            )?;
            Ok((x[0], iters))
        };
        match run(&NewtonOptions::default()) {
            Ok(solved) => Ok(solved),
            Err(e) if solver_failed(&e) => {
                health.record(HealthEvent::SolverRetuned {
                    what: "temperature-only decoupling",
                });
                match run(&NewtonOptions::robust()) {
                    Ok(solved) => Ok(solved),
                    Err(e) if solver_failed(&e) => {
                        health.record(HealthEvent::RomFallback {
                            what: "temperature-only decoupling",
                        });
                        Ok(self.rom_bisect_temperature(cal, f_t))
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Last-ditch solver fallback: grid-scan the characterized TSRO
    /// response over (a guard band around) the acceptance range for the
    /// temperature minimizing the residual. Immune to divergence by
    /// construction. Returns `(temperature, model evaluations)`.
    fn rom_bisect_temperature(&self, cal: &Calibration, f_t: Hertz) -> (f64, usize) {
        let (lo, hi) = (
            self.spec.temp_range.0 .0 - 10.0,
            self.spec.temp_range.1 .0 + 10.0,
        );
        let steps = ((hi - lo) / ROM_GRID_STEP).ceil() as usize;
        let mut best = (f64::INFINITY, lo);
        for i in 0..=steps {
            let t = lo + (hi - lo) * i as f64 / steps as f64;
            let r = self.tsro_residual(cal, f_t, t).abs();
            if r < best.0 {
                best = (r, t);
            }
        }
        (best.1, steps + 1)
    }

    /// One conversion: temperature plus tracked threshold shifts, with the
    /// hardened controller's full detection/recovery chain. A lost PSRO
    /// bank degrades the output to temperature-only (threshold shifts
    /// frozen at calibration) instead of failing; a lost TSRO is fatal.
    ///
    /// # Errors
    ///
    /// * [`SensorError::NotCalibrated`] if [`PtSensor::calibrate`] has not
    ///   run;
    /// * [`SensorError::CalibrationCorrupted`] if register parity fails
    ///   (run [`PtSensor::parity_scrub`] to recover);
    /// * [`SensorError::ChannelFailed`] if the TSRO yields no plausible
    ///   measurement after retries;
    /// * [`SensorError::TemperatureOutOfRange`] if the solve leaves the
    ///   characterized range;
    /// * solver errors if every Newton stage fails.
    pub fn read<R: Rng + ?Sized>(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<Reading, SensorError> {
        let cal = self.calibration.ok_or(SensorError::NotCalibrated)?;
        let registers = cal.parity_errors();
        if registers != 0 {
            return Err(SensorError::CalibrationCorrupted { registers });
        }
        let spec = self.spec;
        let mut ledger = EnergyLedger::new();
        let mut health = Health::nominal();

        // Measurements (TSRO is load-bearing; PSROs may degrade).
        let f_t = self
            .measure_channel(
                RoClass::Tsro,
                spec.bank.vdd_tsro,
                inputs,
                rng,
                &mut ledger,
                &mut health,
            )?
            .ok_or(SensorError::ChannelFailed {
                channel: RoClass::Tsro.name(),
            })?;
        let f_n = self.measure_channel(
            RoClass::PsroN,
            spec.bank.vdd_low,
            inputs,
            rng,
            &mut ledger,
            &mut health,
        )?;
        let f_p = self.measure_channel(
            RoClass::PsroP,
            spec.bank.vdd_low,
            inputs,
            rng,
            &mut ledger,
            &mut health,
        )?;

        let (temp, d_vtn, d_vtp, total_iters) = match (f_n, f_p) {
            (Some(f_n), Some(f_p)) => {
                match self.solve_conversion(&cal, f_t, f_n, f_p, &NewtonOptions::default()) {
                    Ok((x, iters)) => (x[0], x[1], x[2], iters),
                    Err(e) if solver_failed(&e) => {
                        health.record(HealthEvent::SolverRetuned {
                            what: "conversion decoupling",
                        });
                        match self.solve_conversion(&cal, f_t, f_n, f_p, &NewtonOptions::robust()) {
                            Ok((x, iters)) => (x[0], x[1], x[2], iters),
                            Err(e) if solver_failed(&e) => {
                                health.record(HealthEvent::RomFallback {
                                    what: "conversion decoupling",
                                });
                                let (t, iters) = self.rom_bisect_temperature(&cal, f_t);
                                (t, cal.d_vtn().0, cal.d_vtp().0, iters)
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            _ => {
                health.record(HealthEvent::DegradedTemperatureOnly);
                let (t, iters) = self.solve_temperature_only(&cal, f_t, &mut health)?;
                (t, cal.d_vtn().0, cal.d_vtp().0, iters)
            }
        };

        if temp < spec.temp_range.0 .0 || temp > spec.temp_range.1 .0 {
            return Err(SensorError::TemperatureOutOfRange {
                solved: Celsius(temp),
            });
        }

        // Plausibility guard on the solved process outputs: drift beyond
        // the hardening limit means the numbers cannot be trusted.
        let h = spec.hardening;
        if (d_vtn - cal.d_vtn().0).abs() > h.max_drift.0 {
            health.record(HealthEvent::ImplausibleDrift {
                which: "d_vtn",
                drift: Volt(d_vtn - cal.d_vtn().0),
            });
        }
        if (d_vtp - cal.d_vtp().0).abs() > h.max_drift.0 {
            health.record(HealthEvent::ImplausibleDrift {
                which: "d_vtp",
                drift: Volt(d_vtp - cal.d_vtp().0),
            });
        }

        self.charge_digital(
            &mut ledger,
            "solver",
            total_iters as u64 * spec.solver_cycles_per_iteration,
        );
        self.charge_digital(&mut ledger, "controller", spec.controller_cycles);

        // Output registers quantize the reported values.
        let q = spec.qformat;
        Ok(Reading {
            temperature: Celsius(Fixed::from_f64(temp, q).to_f64()),
            d_vtn: Volt(Fixed::from_f64(d_vtn, q).to_f64()),
            d_vtp: Volt(Fixed::from_f64(d_vtp, q).to_f64()),
            energy: ledger,
            raw_frequencies: (f_t, f_n.unwrap_or(Hertz(0.0)), f_p.unwrap_or(Hertz(0.0))),
            solver_iterations: total_iters,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthStatus;
    use ptsim_faults::{Fault, ReplicaSel};
    use ptsim_mc::model::VariationModel;
    use ptsim_rng::Pcg64;

    fn sensor() -> PtSensor {
        PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap()
    }

    fn calibrated_on(die: &DieSample, seed: u64) -> PtSensor {
        let mut s = sensor();
        let inputs = SensorInputs::new(die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(seed);
        s.calibrate(&inputs, &mut rng).unwrap();
        s
    }

    #[test]
    fn read_before_calibration_fails() {
        let s = sensor();
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(0);
        assert_eq!(
            s.read(&inputs, &mut rng).unwrap_err(),
            SensorError::NotCalibrated
        );
    }

    #[test]
    fn nominal_die_calibrates_to_near_zero_shifts() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 1);
        let cal = s.calibration().unwrap();
        assert!(
            cal.d_vtn().millivolts().abs() < 1.0,
            "d_vtn {}",
            cal.d_vtn()
        );
        assert!(
            cal.d_vtp().millivolts().abs() < 1.0,
            "d_vtp {}",
            cal.d_vtp()
        );
        assert!((cal.mu_n() - 1.0).abs() < 0.01);
        assert!((cal.mu_p() - 1.0).abs() < 0.01);
    }

    #[test]
    fn calibration_recovers_known_d2d_shift() {
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(0.025);
        die.d_vtp_d2d = Volt(-0.015);
        die.mu_n_d2d = 1.04;
        die.mu_p_d2d = 0.97;
        let s = calibrated_on(&die, 2);
        let cal = s.calibration().unwrap();
        assert!(
            (cal.d_vtn().0 - 0.025).abs() < 2e-3,
            "d_vtn {} vs 25 mV",
            cal.d_vtn()
        );
        assert!(
            (cal.d_vtp().0 + 0.015).abs() < 2e-3,
            "d_vtp {} vs -15 mV",
            cal.d_vtp()
        );
        assert!((cal.mu_n() - 1.04).abs() < 0.02, "mu_n {}", cal.mu_n());
        assert!((cal.mu_p() - 0.97).abs() < 0.02, "mu_p {}", cal.mu_p());
    }

    #[test]
    fn temperature_readback_accurate_across_range() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 3);
        let mut rng = Pcg64::seed_from_u64(33);
        for t in [-20.0, 0.0, 25.0, 50.0, 75.0, 100.0] {
            let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t));
            let r = s.read(&inputs, &mut rng).unwrap();
            let err = r.temperature.0 - t;
            assert!(
                err.abs() < 1.5,
                "at {t} °C error {err:.3} °C exceeds ±1.5 °C"
            );
            assert!(
                r.health.is_nominal(),
                "healthy read flagged: {:?}",
                r.health
            );
        }
    }

    #[test]
    fn temperature_accuracy_on_varied_die() {
        // A full Monte-Carlo die (D2D + WID) must still read within spec.
        let model = VariationModel::new(&Technology::n65());
        let mut rng = Pcg64::seed_from_u64(7);
        let die = model.sample_die(&mut rng);
        let s = calibrated_on(&die, 8);
        for t in [0.0, 50.0, 100.0] {
            let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t));
            let r = s.read(&inputs, &mut rng).unwrap();
            let err = r.temperature.0 - t;
            assert!(err.abs() < 2.0, "at {t} °C error {err:.3} °C");
        }
    }

    #[test]
    fn vt_tracking_follows_stress_shift() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 4);
        let mut rng = Pcg64::seed_from_u64(44);
        let base = SensorInputs::new(&die, DieSite::CENTER, Celsius(60.0));
        let stressed = base.with_stress(Volt(0.004), Volt(-0.002));
        let r0 = s.read(&base, &mut rng).unwrap();
        let r1 = s.read(&stressed, &mut rng).unwrap();
        let dn = (r1.d_vtn - r0.d_vtn).millivolts();
        let dp = (r1.d_vtp - r0.d_vtp).millivolts();
        assert!((dn - 4.0).abs() < 1.0, "tracked ΔVtn {dn:.2} mV vs 4 mV");
        assert!((dp + 2.0).abs() < 1.0, "tracked ΔVtp {dp:.2} mV vs -2 mV");
    }

    #[test]
    fn reading_reports_energy_breakdown() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 5);
        let mut rng = Pcg64::seed_from_u64(55);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let r = s.read(&inputs, &mut rng).unwrap();
        for comp in [
            "TSRO",
            "PSRO-N",
            "PSRO-P",
            "counters",
            "controller",
            "solver",
        ] {
            assert!(
                r.energy.component(comp).0 > 0.0,
                "missing energy component {comp}"
            );
        }
        let total_pj = r.energy_total().picojoules();
        assert!(
            total_pj > 50.0 && total_pj < 2000.0,
            "conversion energy {total_pj:.1} pJ implausible"
        );
    }

    #[test]
    fn nominal_conversion_energy_matches_paper() {
        // The abstract reports 367.5 pJ per conversion; the reference spec
        // is tuned to land there at the nominal corner, 25 °C.
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 42);
        let mut rng = Pcg64::seed_from_u64(42);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let r = s.read(&inputs, &mut rng).unwrap();
        let pj = r.energy_total().picojoules();
        assert!(
            (pj - 367.5).abs() < 8.0,
            "conversion energy {pj:.1} pJ vs paper 367.5 pJ"
        );
    }

    #[test]
    fn out_of_range_temperature_rejected() {
        let die = DieSample::nominal();
        let mut spec = SensorSpec::default_65nm();
        spec.temp_range = (Celsius(0.0), Celsius(50.0));
        let mut s = PtSensor::new(Technology::n65(), spec).unwrap();
        let mut rng = Pcg64::seed_from_u64(6);
        s.calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
        let hot = SensorInputs::new(&die, DieSite::CENTER, Celsius(120.0));
        assert!(matches!(
            s.read(&hot, &mut rng),
            Err(SensorError::TemperatureOutOfRange { .. })
        ));
    }

    #[test]
    fn inverted_temp_range_rejected_at_construction() {
        let mut spec = SensorSpec::default_65nm();
        spec.temp_range = (Celsius(50.0), Celsius(0.0));
        assert!(matches!(
            PtSensor::new(Technology::n65(), spec),
            Err(SensorError::InvalidConfig {
                name: "temp_range",
                ..
            })
        ));
        let mut spec = SensorSpec::default_65nm();
        spec.temp_range = (Celsius(25.0), Celsius(25.0));
        assert!(matches!(
            PtSensor::new(Technology::n65(), spec),
            Err(SensorError::InvalidConfig {
                name: "temp_range",
                ..
            })
        ));
    }

    #[test]
    fn nonsense_hardening_rejected_at_construction() {
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.replicas = 0;
        assert!(matches!(
            PtSensor::new(Technology::n65(), spec),
            Err(SensorError::InvalidConfig {
                name: "hardening.replicas",
                ..
            })
        ));
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.retry_window_scale = 0;
        assert!(PtSensor::new(Technology::n65(), spec).is_err());
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.band_margin_low = 0.0;
        assert!(PtSensor::new(Technology::n65(), spec).is_err());
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.band_margin_high = 0.5;
        assert!(PtSensor::new(Technology::n65(), spec).is_err());
    }

    #[test]
    fn set_calibration_replays_stored_state() {
        let die = DieSample::nominal();
        let s1 = calibrated_on(&die, 9);
        let cal = *s1.calibration().unwrap();
        let mut s2 = sensor();
        s2.set_calibration(cal);
        let mut rng = Pcg64::seed_from_u64(99);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(40.0));
        let r = s2.read(&inputs, &mut rng).unwrap();
        assert!((r.temperature.0 - 40.0).abs() < 1.5);
    }

    #[test]
    fn boot_temperature_error_degrades_accuracy() {
        // Calibrating while the die is actually 10 °C hotter than assumed
        // biases subsequent readings.
        let die = DieSample::nominal();
        let mut good = sensor();
        let mut bad = sensor();
        let mut rng = Pcg64::seed_from_u64(10);
        good.calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
        bad.calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(35.0)),
            &mut rng,
        )
        .unwrap();
        let probe = SensorInputs::new(&die, DieSite::CENTER, Celsius(80.0));
        let e_good = (good.read(&probe, &mut rng).unwrap().temperature.0 - 80.0).abs();
        let e_bad = (bad.read(&probe, &mut rng).unwrap().temperature.0 - 80.0).abs();
        assert!(e_bad > e_good, "boot error must hurt: {e_bad} vs {e_good}");
    }

    // --- fault-injection / graceful-degradation behavior ---

    fn faulted_inputs(die: &DieSample, t: f64) -> SensorInputs<'_> {
        SensorInputs::new(die, DieSite::CENTER, Celsius(t))
    }

    #[test]
    fn dead_tsro_is_a_detected_channel_failure() {
        let die = DieSample::nominal();
        let mut s = calibrated_on(&die, 20);
        s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::Tsro,
            replica: ReplicaSel::All,
        }));
        let mut rng = Pcg64::seed_from_u64(20);
        assert!(matches!(
            s.read(&faulted_inputs(&die, 85.0), &mut rng),
            Err(SensorError::ChannelFailed { channel: "TSRO" })
        ));
    }

    #[test]
    fn dead_psro_degrades_to_accurate_temperature_only() {
        let die = DieSample::nominal();
        let mut s = calibrated_on(&die, 21);
        s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::PsroN,
            replica: ReplicaSel::All,
        }));
        let mut rng = Pcg64::seed_from_u64(21);
        let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
        assert_eq!(r.health.status(), HealthStatus::Degraded);
        assert!(r
            .health
            .any(|e| matches!(e, HealthEvent::DegradedTemperatureOnly)));
        assert!(r
            .health
            .any(|e| matches!(e, HealthEvent::ChannelLost { channel: "PSRO-N" })));
        assert!(
            (r.temperature.0 - 85.0).abs() < 3.0,
            "degraded temp {} vs 85 °C",
            r.temperature
        );
        // Threshold outputs frozen at calibration; lost channel reads 0 Hz.
        assert_eq!(r.d_vtn, s.calibration().unwrap().d_vtn());
        assert_eq!(r.raw_frequencies.1, Hertz(0.0));
    }

    #[test]
    fn calib_register_seu_is_caught_by_parity_and_scrubbed() {
        let die = DieSample::nominal();
        let mut s = calibrated_on(&die, 22);
        s.inject_faults(FaultPlan::single(Fault::CalibRegisterSeu {
            register: 0,
            bit: 14,
        }));
        let mut rng = Pcg64::seed_from_u64(22);
        let err = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap_err();
        assert_eq!(
            err,
            SensorError::CalibrationCorrupted { registers: 0b00001 }
        );
        // Scrub recovers by recalibrating; the record says why.
        let outcome = s
            .parity_scrub(&faulted_inputs(&die, 25.0), &mut rng)
            .unwrap()
            .expect("scrub must trigger");
        assert!(outcome
            .health
            .any(|e| matches!(e, HealthEvent::ParityScrubbed { registers: 0b00001 })));
        let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
        assert!((r.temperature.0 - 85.0).abs() < 1.5);
        // A second scrub is a no-op.
        assert!(s
            .parity_scrub(&faulted_inputs(&die, 25.0), &mut rng)
            .unwrap()
            .is_none());
    }

    #[test]
    fn stuck_counter_bit_on_one_replica_is_outvoted() {
        let die = DieSample::nominal();
        let mut spec = SensorSpec::default_65nm();
        spec.hardening = HardeningSpec::redundant();
        let mut s = PtSensor::new(Technology::n65(), spec).unwrap();
        let mut rng = Pcg64::seed_from_u64(23);
        s.calibrate(&faulted_inputs(&die, 25.0), &mut rng).unwrap();
        s.inject_faults(FaultPlan::single(Fault::CounterStuckBit {
            replica: ReplicaSel::Index(0),
            bit: 12,
            stuck_high: true,
        }));
        let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
        assert!(r.health.flagged(), "stuck bit must be flagged");
        assert!(
            (r.temperature.0 - 85.0).abs() < 2.0,
            "voted temp {} vs 85 °C",
            r.temperature
        );
    }

    #[test]
    fn redundant_healthy_sensor_is_not_falsely_flagged() {
        let die = DieSample::nominal();
        let mut spec = SensorSpec::default_65nm();
        spec.hardening = HardeningSpec::redundant();
        let mut s = PtSensor::new(Technology::n65(), spec).unwrap();
        let mut rng = Pcg64::seed_from_u64(24);
        let outcome = s.calibrate(&faulted_inputs(&die, 25.0), &mut rng).unwrap();
        assert!(outcome.health.is_nominal(), "{:?}", outcome.health);
        for t in [0.0, 50.0, 100.0] {
            let r = s.read(&faulted_inputs(&die, t), &mut rng).unwrap();
            assert!(r.health.is_nominal(), "at {t} °C: {:?}", r.health);
        }
    }

    #[test]
    fn clear_faults_restores_nominal_operation() {
        let die = DieSample::nominal();
        let mut s = calibrated_on(&die, 25);
        s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::PsroN,
            replica: ReplicaSel::All,
        }));
        assert!(!s.faults().is_empty());
        s.clear_faults();
        assert!(s.faults().is_empty());
        let mut rng = Pcg64::seed_from_u64(25);
        let r = s.read(&faulted_inputs(&die, 60.0), &mut rng).unwrap();
        assert!(r.health.is_nominal());
        assert!((r.temperature.0 - 60.0).abs() < 1.5);
    }

    #[test]
    fn retry_energy_is_charged_when_a_channel_recovers() {
        // A dead PSRO-N reads 0 Hz — always below the plausibility band —
        // so the controller retries with the widened window before
        // declaring the channel lost. The ledger must carry that overhead.
        let die = DieSample::nominal();
        let mut s = calibrated_on(&die, 26);
        s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::PsroN,
            replica: ReplicaSel::All,
        }));
        let mut rng = Pcg64::seed_from_u64(26);
        let r = s.read(&faulted_inputs(&die, 85.0), &mut rng).unwrap();
        assert!(r.health.any(|e| matches!(
            e,
            HealthEvent::RetriedWindow {
                channel: "PSRO-N",
                ..
            }
        )));
        assert!(
            r.energy.component("retry").0 > 0.0,
            "retry energy must be charged"
        );
        assert_eq!(r.health.status(), HealthStatus::Degraded);
    }
}
