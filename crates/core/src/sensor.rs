//! The self-calibrated process–temperature sensor.
//!
//! One sensor instance owns a ring-oscillator bank, a gated counter with an
//! auto-ranging prescaler, fixed-point calibration registers, and the
//! decoupling solver. Its life cycle mirrors the silicon:
//!
//! 1. **Self-calibration** ([`PtSensor::calibrate`]) — at boot, with the die
//!    assumed to sit at the known ambient reference, each PSRO is measured
//!    at two supplies and the 4×4 Newton decoupling extracts
//!    `(ΔVtn, ΔVtp, µn, µp)`; the TSRO is then measured once to absorb its
//!    own local mismatch into a stored log-domain correction.
//! 2. **Conversion** ([`PtSensor::read`]) — every reading measures the TSRO
//!    and both PSROs at the low supply, then jointly solves
//!    `(T, ΔVtn, ΔVtp)` with a 3×3 Newton decoupling (the TSRO row carries
//!    temperature, the PSRO rows carry the thresholds), so even large
//!    post-calibration drift — TSV stress, BTI/HCI aging — is tracked.
//!    Results are quantized through the Q-format output registers and every
//!    component's energy is charged to an [`EnergyLedger`].

use crate::bank::{BankSpec, RoBank, RoClass};
use crate::calib::Calibration;
use crate::error::SensorError;
use crate::golden::{CharacterizationSpace, GoldenModel};
use crate::newton::{newton_solve, NewtonOptions};
use ptsim_circuit::counter::{auto_measure, GatedCounter};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_circuit::fixed::{Fixed, QFormat};
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Hertz, Joule, Volt};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_rng::Rng;

/// Full hardware specification of one sensor instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    /// Oscillator bank design.
    pub bank: BankSpec,
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Gating window in reference-clock cycles.
    pub window_cycles: u64,
    /// Reference clock (crystal / stable system clock).
    pub ref_clock: Hertz,
    /// Output/coefficient register format.
    pub qformat: QFormat,
    /// Temperature the self-calibration assumes the die is at.
    pub calib_temp: Celsius,
    /// Valid solve range — readings outside are rejected.
    pub temp_range: (Celsius, Celsius),
    /// Energy charged per counted edge (counter + prescaler toggling).
    pub counter_energy_per_count: Joule,
    /// Controller overhead cycles per conversion (FSM, muxing, register IO).
    pub controller_cycles: u64,
    /// Datapath cycles per Newton iteration.
    pub solver_cycles_per_iteration: u64,
    /// Energy per controller/datapath cycle.
    pub digital_energy_per_cycle: Joule,
}

impl SensorSpec {
    /// Reference 65 nm sensor: 16-bit counters, ~12 µs window on a 32 MHz
    /// reference, Q16.16 registers, calibration at 25 °C.
    #[must_use]
    pub fn default_65nm() -> Self {
        SensorSpec {
            bank: BankSpec::default_65nm(),
            counter_bits: 16,
            window_cycles: 448, // 14 µs @ 32 MHz
            ref_clock: Hertz(32.0e6),
            qformat: QFormat::Q16_16,
            calib_temp: Celsius(25.0),
            temp_range: (Celsius(-55.0), Celsius(150.0)),
            counter_energy_per_count: Joule(18e-15),
            controller_cycles: 680,
            solver_cycles_per_iteration: 192,
            digital_energy_per_cycle: Joule(85e-15),
        }
    }
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec::default_65nm()
    }
}

/// The physical situation a sensor measurement happens in.
#[derive(Debug, Clone, Copy)]
pub struct SensorInputs<'a> {
    /// The die (process realization) the sensor is fabricated on.
    pub die: &'a DieSample,
    /// Bank centre location on the die.
    pub site: DieSite,
    /// True junction temperature at the sensor.
    pub temp: Celsius,
    /// Externally-imposed NMOS threshold shift (e.g. TSV stress).
    pub extra_vtn: Volt,
    /// Externally-imposed PMOS threshold shift.
    pub extra_vtp: Volt,
}

impl<'a> SensorInputs<'a> {
    /// Inputs with no external stress.
    #[must_use]
    pub fn new(die: &'a DieSample, site: DieSite, temp: Celsius) -> Self {
        SensorInputs {
            die,
            site,
            temp,
            extra_vtn: Volt::ZERO,
            extra_vtp: Volt::ZERO,
        }
    }

    /// Adds externally-imposed threshold shifts (e.g. from
    /// `ptsim_tsv::StackTopology::stress_vt_shift_at`).
    #[must_use]
    pub fn with_stress(mut self, extra_vtn: Volt, extra_vtp: Volt) -> Self {
        self.extra_vtn = extra_vtn;
        self.extra_vtp = extra_vtp;
        self
    }
}

/// One conversion result.
#[derive(Debug, Clone, PartialEq)]
pub struct Reading {
    /// Solved temperature (quantized through the output register).
    pub temperature: Celsius,
    /// Tracked NMOS threshold shift.
    pub d_vtn: Volt,
    /// Tracked PMOS threshold shift.
    pub d_vtp: Volt,
    /// Per-component energy of this conversion.
    pub energy: EnergyLedger,
    /// Measured (quantized) frequencies `(f_tsro, f_psro_n, f_psro_p)`.
    pub raw_frequencies: (Hertz, Hertz, Hertz),
    /// Total Newton iterations spent in the solves.
    pub solver_iterations: usize,
}

impl Reading {
    /// Total conversion energy.
    #[must_use]
    pub fn energy_total(&self) -> Joule {
        self.energy.total()
    }
}

/// Outcome of a self-calibration pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// The stored calibration.
    pub calibration: Calibration,
    /// Energy spent by the calibration pass.
    pub energy: EnergyLedger,
    /// Newton iterations of the 4×4 decoupling solve.
    pub solver_iterations: usize,
}

/// The on-chip self-calibrated process–temperature sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct PtSensor {
    tech: Technology,
    spec: SensorSpec,
    bank: RoBank,
    /// When present, calibration/conversion math runs on the design-time
    /// characterized polynomial model (hardware-faithful) instead of the
    /// analytic compact model.
    golden: Option<GoldenModel>,
    calibration: Option<Calibration>,
}

impl PtSensor {
    /// Builds a sensor instance for `tech`.
    ///
    /// # Errors
    ///
    /// Propagates bank/counter construction errors for invalid specs.
    pub fn new(tech: Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        // Validate counter/bank parameters eagerly.
        let _ = GatedCounter::new(spec.counter_bits, spec.window_cycles)?;
        let bank = RoBank::new(&tech, spec.bank)?;
        Ok(PtSensor {
            tech,
            spec,
            bank,
            golden: None,
            calibration: None,
        })
    }

    /// Switches the on-chip math to a design-time characterized polynomial
    /// model (what real hardware evaluates), adding its fit error to the
    /// error budget. Invalidates any previous calibration.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn use_characterized_model(
        &mut self,
        space: CharacterizationSpace,
    ) -> Result<(), SensorError> {
        self.golden = Some(GoldenModel::characterize(
            &self.tech,
            self.spec.bank,
            space,
        )?);
        self.calibration = None;
        Ok(())
    }

    /// The characterized model, if enabled.
    #[must_use]
    pub fn characterized_model(&self) -> Option<&GoldenModel> {
        self.golden.as_ref()
    }

    /// On-chip model prediction of `ln f` for an oscillator/supply pair.
    fn model_ln_f(&self, class: RoClass, vdd: Volt, env: &CmosEnv) -> f64 {
        match &self.golden {
            Some(g) => g
                .ln_frequency(class, vdd, env)
                .expect("measurement plan pairs are always characterized"),
            None => self.bank.frequency(&self.tech, class, vdd, env).0.ln(),
        }
    }

    /// Sensor spec.
    #[must_use]
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// Oscillator bank.
    #[must_use]
    pub fn bank(&self) -> &RoBank {
        &self.bank
    }

    /// Technology the sensor is built in.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Stored calibration, if the sensor has been calibrated.
    #[must_use]
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Installs an externally-stored calibration (e.g. replayed from
    /// non-volatile memory).
    pub fn set_calibration(&mut self, calibration: Calibration) {
        self.calibration = Some(calibration);
    }

    /// True environment seen by one oscillator of the bank.
    fn env_for(&self, class: RoClass, inputs: &SensorInputs<'_>) -> CmosEnv {
        self.die_env(class, inputs, inputs.temp)
    }

    fn die_env(&self, class: RoClass, inputs: &SensorInputs<'_>, temp: Celsius) -> CmosEnv {
        let site = self.bank.site_of(class, inputs.site);
        inputs
            .die
            .env_at_with(site, temp, inputs.extra_vtn, inputs.extra_vtp)
    }

    /// Model environment used by the decoupling solver (golden model plus
    /// hypothesized process state).
    fn model_env(d_vtn: f64, d_vtp: f64, mu_n: f64, mu_p: f64, temp: Celsius) -> CmosEnv {
        CmosEnv {
            temp,
            d_vtn: Volt(d_vtn),
            d_vtp: Volt(d_vtp),
            mu_n,
            mu_p,
        }
    }

    /// Measures one oscillator: quantizes the true frequency through the
    /// auto-ranged prescaler + gated counter and charges energy.
    fn measure<R: Rng + ?Sized>(
        &self,
        class: RoClass,
        vdd: Volt,
        env: &CmosEnv,
        rng: &mut R,
        ledger: &mut EnergyLedger,
    ) -> Result<Hertz, SensorError> {
        let counter = GatedCounter::new(self.spec.counter_bits, self.spec.window_cycles)?;
        let ring = self.bank.ring(class).with_vdd(vdd);
        let f_true = ring.frequency(&self.tech, env);
        let phase: f64 = rng.gen();
        let (f_meas, counted) = auto_measure(f_true, &counter, self.spec.ref_clock, phase)?;

        // Energy: oscillator running for the window + counted edges.
        let window = counter.window(self.spec.ref_clock);
        ledger.add(class.name(), ring.run_energy(&self.tech, env, window));
        ledger.add(
            "counters",
            Joule(self.spec.counter_energy_per_count.0 * counted as f64),
        );
        Ok(f_meas)
    }

    fn charge_digital(&self, ledger: &mut EnergyLedger, name: &str, cycles: u64) {
        ledger.add(
            name,
            Joule(self.spec.digital_energy_per_cycle.0 * cycles as f64),
        );
    }

    /// Self-calibration pass.
    ///
    /// The controller *assumes* the die sits at `spec.calib_temp`; the
    /// caller provides the *true* conditions in `inputs`, so boot-time
    /// temperature error is faithfully propagated into the stored state.
    ///
    /// # Errors
    ///
    /// Returns solver errors if the 4×4 decoupling diverges, and
    /// measurement/construction errors from the circuit blocks.
    pub fn calibrate<R: Rng + ?Sized>(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<CalibrationOutcome, SensorError> {
        let mut ledger = EnergyLedger::new();
        let spec = self.spec;

        // Four PSRO measurements: each polarity at both supplies.
        let plan = [
            (RoClass::PsroN, spec.bank.vdd_high),
            (RoClass::PsroN, spec.bank.vdd_low),
            (RoClass::PsroP, spec.bank.vdd_high),
            (RoClass::PsroP, spec.bank.vdd_low),
        ];
        let mut measured = [0.0f64; 4];
        for (slot, (class, vdd)) in plan.iter().enumerate() {
            let env = self.env_for(*class, inputs);
            measured[slot] = self.measure(*class, *vdd, &env, rng, &mut ledger)?.0;
        }

        // 4×4 decoupling at the assumed calibration temperature.
        let t_cal = spec.calib_temp;
        let this = &*self;
        let mut x = [0.0, 0.0, 1.0, 1.0];
        let residual = |v: &[f64]| -> Vec<f64> {
            let env = PtSensor::model_env(v[0], v[1], v[2], v[3], t_cal);
            plan.iter()
                .zip(&measured)
                .map(|((class, vdd), m)| this.model_ln_f(*class, *vdd, &env) - m.ln())
                .collect()
        };
        let iters = newton_solve(
            &mut x,
            residual,
            &[1e-4, 1e-4, 1e-3, 1e-3],
            &[0.04, 0.04, 0.15, 0.15],
            &NewtonOptions::default(),
            "calibration decoupling",
        )?;
        self.charge_digital(
            &mut ledger,
            "solver",
            iters as u64 * spec.solver_cycles_per_iteration,
        );

        // TSRO reference: absorb its local mismatch into a stored log-scale.
        let env_t = self.env_for(RoClass::Tsro, inputs);
        let f_t = self.measure(RoClass::Tsro, spec.bank.vdd_tsro, &env_t, rng, &mut ledger)?;
        let model_env = PtSensor::model_env(x[0], x[1], x[2], x[3], t_cal);
        let ln_f_t_model = self.model_ln_f(RoClass::Tsro, spec.bank.vdd_tsro, &model_env);
        let ln_scale = f_t.0.ln() - ln_f_t_model;

        self.charge_digital(&mut ledger, "controller", spec.controller_cycles * 2);

        let calibration = Calibration::store(
            Volt(x[0]),
            Volt(x[1]),
            x[2],
            x[3],
            ln_scale,
            t_cal,
            spec.qformat,
        );
        self.calibration = Some(calibration);
        Ok(CalibrationOutcome {
            calibration,
            energy: ledger,
            solver_iterations: iters,
        })
    }

    /// One conversion: temperature plus tracked threshold shifts.
    ///
    /// # Errors
    ///
    /// * [`SensorError::NotCalibrated`] if [`PtSensor::calibrate`] has not
    ///   run;
    /// * [`SensorError::TemperatureOutOfRange`] if the solve leaves the
    ///   characterized range;
    /// * solver errors if a Newton stage diverges.
    pub fn read<R: Rng + ?Sized>(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<Reading, SensorError> {
        let cal = self.calibration.ok_or(SensorError::NotCalibrated)?;
        let spec = self.spec;
        let mut ledger = EnergyLedger::new();

        // Measurements.
        let env_t = self.env_for(RoClass::Tsro, inputs);
        let f_t = self.measure(RoClass::Tsro, spec.bank.vdd_tsro, &env_t, rng, &mut ledger)?;
        let env_n = self.env_for(RoClass::PsroN, inputs);
        let f_n = self.measure(RoClass::PsroN, spec.bank.vdd_low, &env_n, rng, &mut ledger)?;
        let env_p = self.env_for(RoClass::PsroP, inputs);
        let f_p = self.measure(RoClass::PsroP, spec.bank.vdd_low, &env_p, rng, &mut ledger)?;

        let ln_scale = cal.ln_tsro_scale();
        let (mu_n, mu_p) = (cal.mu_n(), cal.mu_p());
        let this = &*self;

        // Joint 3×3 decoupling: (T, ΔVtn, ΔVtp) from (f_t, f_n, f_p).
        // The TSRO row dominates temperature and the PSRO rows dominate the
        // thresholds, so the Jacobian is diagonally strong and quadratic
        // convergence holds even for large post-calibration drift (aging,
        // stress).
        let mut x = [cal.calib_temp().0, cal.d_vtn().0, cal.d_vtp().0];
        let total_iters = newton_solve(
            &mut x,
            |v| {
                let env = PtSensor::model_env(v[1], v[2], mu_n, mu_p, Celsius(v[0]));
                vec![
                    this.model_ln_f(RoClass::Tsro, spec.bank.vdd_tsro, &env) - f_t.0.ln()
                        + ln_scale,
                    this.model_ln_f(RoClass::PsroN, spec.bank.vdd_low, &env) - f_n.0.ln(),
                    this.model_ln_f(RoClass::PsroP, spec.bank.vdd_low, &env) - f_p.0.ln(),
                ]
            },
            &[0.01, 1e-4, 1e-4],
            &[40.0, 0.03, 0.03],
            &NewtonOptions::default(),
            "conversion decoupling",
        )?;
        let (temp, d_vtn, d_vtp) = (x[0], x[1], x[2]);

        if temp < spec.temp_range.0 .0 || temp > spec.temp_range.1 .0 {
            return Err(SensorError::TemperatureOutOfRange {
                solved: Celsius(temp),
            });
        }

        self.charge_digital(
            &mut ledger,
            "solver",
            total_iters as u64 * spec.solver_cycles_per_iteration,
        );
        self.charge_digital(&mut ledger, "controller", spec.controller_cycles);

        // Output registers quantize the reported values.
        let q = spec.qformat;
        Ok(Reading {
            temperature: Celsius(Fixed::from_f64(temp, q).to_f64()),
            d_vtn: Volt(Fixed::from_f64(d_vtn, q).to_f64()),
            d_vtp: Volt(Fixed::from_f64(d_vtp, q).to_f64()),
            energy: ledger,
            raw_frequencies: (f_t, f_n, f_p),
            solver_iterations: total_iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_mc::model::VariationModel;
    use ptsim_rng::Pcg64;

    fn sensor() -> PtSensor {
        PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap()
    }

    fn calibrated_on(die: &DieSample, seed: u64) -> PtSensor {
        let mut s = sensor();
        let inputs = SensorInputs::new(die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(seed);
        s.calibrate(&inputs, &mut rng).unwrap();
        s
    }

    #[test]
    fn read_before_calibration_fails() {
        let s = sensor();
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(0);
        assert_eq!(
            s.read(&inputs, &mut rng).unwrap_err(),
            SensorError::NotCalibrated
        );
    }

    #[test]
    fn nominal_die_calibrates_to_near_zero_shifts() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 1);
        let cal = s.calibration().unwrap();
        assert!(
            cal.d_vtn().millivolts().abs() < 1.0,
            "d_vtn {}",
            cal.d_vtn()
        );
        assert!(
            cal.d_vtp().millivolts().abs() < 1.0,
            "d_vtp {}",
            cal.d_vtp()
        );
        assert!((cal.mu_n() - 1.0).abs() < 0.01);
        assert!((cal.mu_p() - 1.0).abs() < 0.01);
    }

    #[test]
    fn calibration_recovers_known_d2d_shift() {
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(0.025);
        die.d_vtp_d2d = Volt(-0.015);
        die.mu_n_d2d = 1.04;
        die.mu_p_d2d = 0.97;
        let s = calibrated_on(&die, 2);
        let cal = s.calibration().unwrap();
        assert!(
            (cal.d_vtn().0 - 0.025).abs() < 2e-3,
            "d_vtn {} vs 25 mV",
            cal.d_vtn()
        );
        assert!(
            (cal.d_vtp().0 + 0.015).abs() < 2e-3,
            "d_vtp {} vs -15 mV",
            cal.d_vtp()
        );
        assert!((cal.mu_n() - 1.04).abs() < 0.02, "mu_n {}", cal.mu_n());
        assert!((cal.mu_p() - 0.97).abs() < 0.02, "mu_p {}", cal.mu_p());
    }

    #[test]
    fn temperature_readback_accurate_across_range() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 3);
        let mut rng = Pcg64::seed_from_u64(33);
        for t in [-20.0, 0.0, 25.0, 50.0, 75.0, 100.0] {
            let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t));
            let r = s.read(&inputs, &mut rng).unwrap();
            let err = r.temperature.0 - t;
            assert!(
                err.abs() < 1.5,
                "at {t} °C error {err:.3} °C exceeds ±1.5 °C"
            );
        }
    }

    #[test]
    fn temperature_accuracy_on_varied_die() {
        // A full Monte-Carlo die (D2D + WID) must still read within spec.
        let model = VariationModel::new(&Technology::n65());
        let mut rng = Pcg64::seed_from_u64(7);
        let die = model.sample_die(&mut rng);
        let s = calibrated_on(&die, 8);
        for t in [0.0, 50.0, 100.0] {
            let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t));
            let r = s.read(&inputs, &mut rng).unwrap();
            let err = r.temperature.0 - t;
            assert!(err.abs() < 2.0, "at {t} °C error {err:.3} °C");
        }
    }

    #[test]
    fn vt_tracking_follows_stress_shift() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 4);
        let mut rng = Pcg64::seed_from_u64(44);
        let base = SensorInputs::new(&die, DieSite::CENTER, Celsius(60.0));
        let stressed = base.with_stress(Volt(0.004), Volt(-0.002));
        let r0 = s.read(&base, &mut rng).unwrap();
        let r1 = s.read(&stressed, &mut rng).unwrap();
        let dn = (r1.d_vtn - r0.d_vtn).millivolts();
        let dp = (r1.d_vtp - r0.d_vtp).millivolts();
        assert!((dn - 4.0).abs() < 1.0, "tracked ΔVtn {dn:.2} mV vs 4 mV");
        assert!((dp + 2.0).abs() < 1.0, "tracked ΔVtp {dp:.2} mV vs -2 mV");
    }

    #[test]
    fn reading_reports_energy_breakdown() {
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 5);
        let mut rng = Pcg64::seed_from_u64(55);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let r = s.read(&inputs, &mut rng).unwrap();
        for comp in [
            "TSRO",
            "PSRO-N",
            "PSRO-P",
            "counters",
            "controller",
            "solver",
        ] {
            assert!(
                r.energy.component(comp).0 > 0.0,
                "missing energy component {comp}"
            );
        }
        let total_pj = r.energy_total().picojoules();
        assert!(
            total_pj > 50.0 && total_pj < 2000.0,
            "conversion energy {total_pj:.1} pJ implausible"
        );
    }

    #[test]
    fn nominal_conversion_energy_matches_paper() {
        // The abstract reports 367.5 pJ per conversion; the reference spec
        // is tuned to land there at the nominal corner, 25 °C.
        let die = DieSample::nominal();
        let s = calibrated_on(&die, 42);
        let mut rng = Pcg64::seed_from_u64(42);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let r = s.read(&inputs, &mut rng).unwrap();
        let pj = r.energy_total().picojoules();
        assert!(
            (pj - 367.5).abs() < 8.0,
            "conversion energy {pj:.1} pJ vs paper 367.5 pJ"
        );
    }

    #[test]
    fn out_of_range_temperature_rejected() {
        let die = DieSample::nominal();
        let mut spec = SensorSpec::default_65nm();
        spec.temp_range = (Celsius(0.0), Celsius(50.0));
        let mut s = PtSensor::new(Technology::n65(), spec).unwrap();
        let mut rng = Pcg64::seed_from_u64(6);
        s.calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
        let hot = SensorInputs::new(&die, DieSite::CENTER, Celsius(120.0));
        assert!(matches!(
            s.read(&hot, &mut rng),
            Err(SensorError::TemperatureOutOfRange { .. })
        ));
    }

    #[test]
    fn set_calibration_replays_stored_state() {
        let die = DieSample::nominal();
        let s1 = calibrated_on(&die, 9);
        let cal = *s1.calibration().unwrap();
        let mut s2 = sensor();
        s2.set_calibration(cal);
        let mut rng = Pcg64::seed_from_u64(99);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(40.0));
        let r = s2.read(&inputs, &mut rng).unwrap();
        assert!((r.temperature.0 - 40.0).abs() < 1.5);
    }

    #[test]
    fn boot_temperature_error_degrades_accuracy() {
        // Calibrating while the die is actually 10 °C hotter than assumed
        // biases subsequent readings.
        let die = DieSample::nominal();
        let mut good = sensor();
        let mut bad = sensor();
        let mut rng = Pcg64::seed_from_u64(10);
        good.calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
        bad.calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(35.0)),
            &mut rng,
        )
        .unwrap();
        let probe = SensorInputs::new(&die, DieSite::CENTER, Celsius(80.0));
        let e_good = (good.read(&probe, &mut rng).unwrap().temperature.0 - 80.0).abs();
        let e_bad = (bad.read(&probe, &mut rng).unwrap().temperature.0 - 80.0).abs();
        assert!(e_bad > e_good, "boot error must hurt: {e_bad} vs {e_good}");
    }
}
