//! The self-calibrated process–temperature sensor.
//!
//! One sensor instance owns a ring-oscillator bank, a gated counter with an
//! auto-ranging prescaler, fixed-point calibration registers, and the
//! decoupling solver. Its life cycle mirrors the silicon:
//!
//! 1. **Self-calibration** ([`PtSensor::calibrate`]) — at boot, with the die
//!    assumed to sit at the known ambient reference, each PSRO is measured
//!    at two supplies and the 4×4 Newton decoupling extracts
//!    `(ΔVtn, ΔVtp, µn, µp)`; the TSRO is then measured once to absorb its
//!    own local mismatch into a stored log-domain correction.
//! 2. **Conversion** ([`PtSensor::read`]) — every reading measures the TSRO
//!    and both PSROs at the low supply, then jointly solves
//!    `(T, ΔVtn, ΔVtp)` with a 3×3 Newton decoupling (the TSRO row carries
//!    temperature, the PSRO rows carry the thresholds), so even large
//!    post-calibration drift — TSV stress, BTI/HCI aging — is tracked.
//!    Results are quantized through the Q-format output registers and every
//!    component's energy is charged to an
//!    [`EnergyLedger`].
//!
//! Both entry points are thin compositions over the staged
//! [`pipeline`](crate::pipeline) — acquisition, gating, solving, output —
//! whose stage modules hold the actual conversion logic and its unit
//! tests. Multi-die campaigns should use
//! [`BatchPlan`](crate::pipeline::BatchPlan) or [`PtSensor::read_batch`]
//! to amortize per-conversion setup.
//!
//! ## Hardening
//!
//! The controller distrusts every raw number it handles
//! ([`HardeningSpec`]): counts are checked against design-time plausibility
//! bands, optionally majority-voted across redundant oscillator replicas,
//! and re-measured with a widened window when implausible; calibration
//! registers carry parity; the decoupling solver escalates from the plain
//! Newton tuning through robust damping to a bisection against the
//! characterized response; a lost PSRO bank degrades the sensor to a
//! temperature-only output instead of killing it. Every result carries a
//! [`Health`](crate::Health) record — a corrupted output is either an error or flagged,
//! never silent. Faults are injected with [`PtSensor::inject_faults`]; with
//! no faults and the default single-replica hardening the datapath is
//! bit-identical to the unhardened sensor.

use crate::bank::{BankCache, BankSpec, RoBank, RoClass};
use crate::calib::Calibration;
use crate::error::SensorError;
use crate::golden::{CharacterizationSpace, GoldenModel};
use crate::health::HealthEvent;
use crate::pipeline::bands::{design_bands, Band};
use ptsim_circuit::counter::GatedCounter;
use ptsim_circuit::energy::EnergyLedger;
use ptsim_circuit::fixed::QFormat;
use ptsim_device::delay::ThermalPoint;
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Hertz, Joule, Volt};
use ptsim_faults::FaultPlan;
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_rng::Rng;

pub use crate::pipeline::output::{CalibrationOutcome, Reading};

/// Robustness knobs of the sensor controller.
///
/// The defaults describe the paper's baseline sensor: one oscillator per
/// channel, two widened-window retries, and plausibility margins wide
/// enough that no healthy die is ever flagged — the hardened datapath is
/// bit-identical to the unhardened one until something actually fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningSpec {
    /// Redundant oscillator+counter replicas per channel (majority-voted).
    pub replicas: usize,
    /// Widened-window re-measurements before a channel is declared lost.
    pub max_retries: usize,
    /// Window stretch factor for retry measurements.
    pub retry_window_scale: u64,
    /// Plausibility band lower edge, as a fraction of the slowest
    /// design-corner frequency.
    pub band_margin_low: f64,
    /// Plausibility band upper edge, as a multiple of the fastest
    /// design-corner frequency.
    pub band_margin_high: f64,
    /// Relative deviation from the replica median beyond which a replica is
    /// outvoted.
    pub replica_outlier_rel: f64,
    /// Relative spread of the voted replicas beyond which the channel is
    /// flagged (excess jitter / marginal supply).
    pub replica_spread_rel: f64,
    /// Largest plausible post-calibration threshold drift; solved drifts
    /// beyond it flag the reading.
    pub max_drift: Volt,
}

impl HardeningSpec {
    /// Baseline: single replica, guards only.
    #[must_use]
    pub fn baseline() -> Self {
        HardeningSpec {
            replicas: 1,
            max_retries: 2,
            retry_window_scale: 4,
            band_margin_low: 0.25,
            band_margin_high: 6.0,
            replica_outlier_rel: 0.02,
            replica_spread_rel: 5e-3,
            max_drift: Volt(0.08),
        }
    }

    /// Triple modular redundancy on every channel, otherwise baseline.
    #[must_use]
    pub fn redundant() -> Self {
        HardeningSpec {
            replicas: 3,
            ..HardeningSpec::baseline()
        }
    }
}

impl Default for HardeningSpec {
    fn default() -> Self {
        HardeningSpec::baseline()
    }
}

/// Full hardware specification of one sensor instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    /// Oscillator bank design.
    pub bank: BankSpec,
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Gating window in reference-clock cycles.
    pub window_cycles: u64,
    /// Reference clock (crystal / stable system clock).
    pub ref_clock: Hertz,
    /// Output/coefficient register format.
    pub qformat: QFormat,
    /// Temperature the self-calibration assumes the die is at.
    pub calib_temp: Celsius,
    /// Valid solve range — readings outside are rejected.
    pub temp_range: (Celsius, Celsius),
    /// Energy charged per counted edge (counter + prescaler toggling).
    pub counter_energy_per_count: Joule,
    /// Controller overhead cycles per conversion (FSM, muxing, register IO).
    pub controller_cycles: u64,
    /// Datapath cycles per Newton iteration.
    pub solver_cycles_per_iteration: u64,
    /// Energy per controller/datapath cycle.
    pub digital_energy_per_cycle: Joule,
    /// Robustness configuration of the controller.
    pub hardening: HardeningSpec,
}

impl SensorSpec {
    /// Reference 65 nm sensor: 16-bit counters, ~12 µs window on a 32 MHz
    /// reference, Q16.16 registers, calibration at 25 °C.
    #[must_use]
    pub fn default_65nm() -> Self {
        SensorSpec {
            bank: BankSpec::default_65nm(),
            counter_bits: 16,
            window_cycles: 448, // 14 µs @ 32 MHz
            ref_clock: Hertz(32.0e6),
            qformat: QFormat::Q16_16,
            calib_temp: Celsius(25.0),
            temp_range: (Celsius(-55.0), Celsius(150.0)),
            counter_energy_per_count: Joule(18e-15),
            controller_cycles: 680,
            solver_cycles_per_iteration: 192,
            digital_energy_per_cycle: Joule(85e-15),
            hardening: HardeningSpec::baseline(),
        }
    }
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec::default_65nm()
    }
}

/// The physical situation a sensor measurement happens in.
#[derive(Debug, Clone, Copy)]
pub struct SensorInputs<'a> {
    /// The die (process realization) the sensor is fabricated on.
    pub die: &'a DieSample,
    /// Bank centre location on the die.
    pub site: DieSite,
    /// True junction temperature at the sensor.
    pub temp: Celsius,
    /// Externally-imposed NMOS threshold shift (e.g. TSV stress).
    pub extra_vtn: Volt,
    /// Externally-imposed PMOS threshold shift.
    pub extra_vtp: Volt,
}

impl<'a> SensorInputs<'a> {
    /// Inputs with no external stress.
    #[must_use]
    pub fn new(die: &'a DieSample, site: DieSite, temp: Celsius) -> Self {
        SensorInputs {
            die,
            site,
            temp,
            extra_vtn: Volt::ZERO,
            extra_vtp: Volt::ZERO,
        }
    }

    /// Adds externally-imposed threshold shifts (e.g. from
    /// `ptsim_tsv::StackTopology::stress_vt_shift_at`).
    #[must_use]
    pub fn with_stress(mut self, extra_vtn: Volt, extra_vtp: Volt) -> Self {
        self.extra_vtn = extra_vtn;
        self.extra_vtp = extra_vtp;
        self
    }
}

/// The on-chip self-calibrated process–temperature sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct PtSensor {
    pub(crate) tech: Technology,
    pub(crate) spec: SensorSpec,
    pub(crate) bank: RoBank,
    /// Precomputed hot-path state of the bank (derived from `tech` + `bank`
    /// at construction; bit-identical exact memoization).
    pub(crate) cache: BankCache,
    /// When present, calibration/conversion math runs on the design-time
    /// characterized polynomial model (hardware-faithful) instead of the
    /// analytic compact model.
    pub(crate) golden: Option<GoldenModel>,
    pub(crate) calibration: Option<Calibration>,
    /// Design-time plausibility bands, one per measurement-plan pair.
    pub(crate) bands: Vec<Band>,
    /// Active injected faults (empty in a healthy sensor).
    pub(crate) faults: FaultPlan,
}

impl PtSensor {
    /// Builds a sensor instance for `tech`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for an empty/inverted
    /// `temp_range` or nonsensical hardening knobs, and propagates
    /// bank/counter construction errors for invalid specs.
    pub fn new(tech: Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        if spec.temp_range.0 .0 >= spec.temp_range.1 .0 {
            return Err(SensorError::InvalidConfig {
                name: "temp_range",
                value: spec.temp_range.0 .0,
            });
        }
        let h = spec.hardening;
        if h.replicas == 0 || h.replicas > 9 {
            return Err(SensorError::InvalidConfig {
                name: "hardening.replicas",
                value: h.replicas as f64,
            });
        }
        if h.retry_window_scale == 0 {
            return Err(SensorError::InvalidConfig {
                name: "hardening.retry_window_scale",
                value: 0.0,
            });
        }
        if !(h.band_margin_low > 0.0 && h.band_margin_low <= 1.0) {
            return Err(SensorError::InvalidConfig {
                name: "hardening.band_margin_low",
                value: h.band_margin_low,
            });
        }
        if h.band_margin_high < 1.0 {
            return Err(SensorError::InvalidConfig {
                name: "hardening.band_margin_high",
                value: h.band_margin_high,
            });
        }
        // Validate counter/bank parameters eagerly (including the widest
        // retry window the controller may configure).
        let _ = GatedCounter::new(spec.counter_bits, spec.window_cycles)?;
        let _ = GatedCounter::new(spec.counter_bits, spec.window_cycles * h.retry_window_scale)?;
        let bank = RoBank::new(&tech, spec.bank)?;
        let bands = design_bands(&tech, &bank, &spec);
        let cache = BankCache::new(&tech, &bank);
        Ok(PtSensor {
            tech,
            spec,
            bank,
            cache,
            golden: None,
            calibration: None,
            bands,
            faults: FaultPlan::new(),
        })
    }

    /// Switches the on-chip math to a design-time characterized polynomial
    /// model (what real hardware evaluates), adding its fit error to the
    /// error budget. Invalidates any previous calibration.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn use_characterized_model(
        &mut self,
        space: CharacterizationSpace,
    ) -> Result<(), SensorError> {
        self.golden = Some(GoldenModel::characterize(
            &self.tech,
            self.spec.bank,
            space,
        )?);
        self.calibration = None;
        Ok(())
    }

    /// The characterized model, if enabled.
    #[must_use]
    pub fn characterized_model(&self) -> Option<&GoldenModel> {
        self.golden.as_ref()
    }

    /// On-chip model prediction of `ln f` for an oscillator/supply pair.
    /// The analytic path runs on the [`BankCache`] (bit-identical to the
    /// uncached bank evaluation it replaced).
    pub(crate) fn model_ln_f(&self, class: RoClass, vdd: Volt, env: &CmosEnv) -> f64 {
        match &self.golden {
            Some(g) => g
                .ln_frequency(class, vdd, env)
                .expect("measurement plan pairs are always characterized"),
            None => self.cache.frequency(class, vdd, env).0.ln(),
        }
    }

    /// [`PtSensor::model_ln_f`] with a caller-computed [`ThermalPoint`]
    /// (`th` must be `self.cache.thermal(env.temp)`) and drain-saturation
    /// factor (`drain` must be
    /// [`DelayCache::drain_factor`](ptsim_device::delay::DelayCache::drain_factor)
    /// `(th, vdd)`): the decoupling residuals evaluate three model rows at
    /// one temperature per call, so sharing the point saves two `powf` —
    /// and sharing the factor one `exp` — per residual evaluation. The
    /// golden (characterized) path ignores `th` and `drain`.
    pub(crate) fn model_ln_f_at_drain(
        &self,
        class: RoClass,
        vdd: Volt,
        env: &CmosEnv,
        th: &ThermalPoint,
        drain: f64,
    ) -> f64 {
        match &self.golden {
            Some(g) => g
                .ln_frequency(class, vdd, env)
                .expect("measurement plan pairs are always characterized"),
            None => self
                .cache
                .ring(class)
                .frequency_with_drain(th, drain, vdd, env)
                .0
                .ln(),
        }
    }

    /// Sensor spec.
    #[must_use]
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// Oscillator bank.
    #[must_use]
    pub fn bank(&self) -> &RoBank {
        &self.bank
    }

    /// Technology the sensor is built in.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Stored calibration, if the sensor has been calibrated.
    #[must_use]
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Installs an externally-stored calibration (e.g. replayed from
    /// non-volatile memory).
    pub fn set_calibration(&mut self, calibration: Calibration) {
        self.calibration = Some(calibration);
    }

    /// Injects a set of hardware faults. Calibration-register SEUs strike
    /// immediately (if a calibration is stored); every other fault corrupts
    /// subsequent measurements at its physical point of action.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        for (register, bit) in plan.calib_seus() {
            if let Some(cal) = self.calibration.as_mut() {
                cal.inject_bit_flip(register, bit);
            }
        }
        self.faults = plan;
    }

    /// Removes all injected faults (register corruption persists until a
    /// recalibration rewrites the registers).
    pub fn clear_faults(&mut self) {
        self.faults = FaultPlan::new();
    }

    /// Resets *all* per-die state a reused worker sensor carries between
    /// dies of a batch campaign: the injected fault plan **and** the stored
    /// calibration. `clear_faults` alone was enough only by accident — the
    /// scalar path happened to overwrite the stale calibration before
    /// reading it, but the lane kernel never installs per-die calibrations
    /// into the shared worker sensor at all, so a stale one must not
    /// linger. Per-run metrics live in the worker's
    /// [`Scratch`](crate::pipeline::Scratch), not the sensor, and are
    /// intentionally preserved (they are merged after the run).
    pub fn reset_for_reuse(&mut self) {
        self.faults = FaultPlan::new();
        self.calibration = None;
    }

    /// The active fault plan (empty when healthy).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Checks calibration-register parity and, on a mismatch, recovers by
    /// re-running the self-calibration. Returns the fresh outcome (with a
    /// [`HealthEvent::ParityScrubbed`] record) if a scrub was needed.
    ///
    /// # Errors
    ///
    /// Propagates recalibration failures.
    pub fn parity_scrub<R: Rng + ?Sized>(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<Option<CalibrationOutcome>, SensorError> {
        let mask = match &self.calibration {
            Some(cal) => cal.parity_errors(),
            None => return Ok(None),
        };
        if mask == 0 {
            return Ok(None);
        }
        let mut outcome = self.calibrate(inputs, rng)?;
        outcome
            .health
            .record(HealthEvent::ParityScrubbed { registers: mask });
        Ok(Some(outcome))
    }

    /// Environment the sensor bank actually experiences on this die at this
    /// temperature (site-local variation plus external stress).
    pub(crate) fn die_env(
        &self,
        class: RoClass,
        inputs: &SensorInputs<'_>,
        temp: Celsius,
    ) -> CmosEnv {
        let site = self.bank.site_of(class, inputs.site);
        inputs
            .die
            .env_at_with(site, temp, inputs.extra_vtn, inputs.extra_vtp)
    }

    /// Charges `cycles` of digital switching energy to a ledger component.
    pub(crate) fn charge_digital(
        &self,
        ledger: &mut EnergyLedger,
        name: &'static str,
        cycles: u64,
    ) {
        ledger.add(
            name,
            Joule(self.spec.digital_energy_per_cycle.0 * cycles as f64),
        );
    }

    /// Self-calibration pass — the staged pipeline's
    /// [`run_calibration`](crate::pipeline::run_calibration).
    ///
    /// The controller *assumes* the die sits at `spec.calib_temp`; the
    /// caller provides the *true* conditions in `inputs`, so boot-time
    /// temperature error is faithfully propagated into the stored state.
    /// If the plain decoupling solve fails, the robust tuning is tried
    /// before giving up (recorded in the outcome's health).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::ChannelFailed`] if any oscillator produces no
    /// plausible measurement, solver errors if the 4×4 decoupling diverges
    /// under both tunings, and measurement/construction errors from the
    /// circuit blocks.
    pub fn calibrate<R: Rng + ?Sized>(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<CalibrationOutcome, SensorError> {
        crate::pipeline::run_calibration(self, inputs, rng)
    }

    /// One conversion — the staged pipeline's
    /// [`run_conversion`](crate::pipeline::run_conversion): temperature
    /// plus tracked threshold shifts, with the hardened controller's full
    /// detection/recovery chain. A lost PSRO bank degrades the output to
    /// temperature-only (threshold shifts frozen at calibration) instead of
    /// failing; a lost TSRO is fatal.
    ///
    /// # Errors
    ///
    /// * [`SensorError::NotCalibrated`] if [`PtSensor::calibrate`] has not
    ///   run;
    /// * [`SensorError::CalibrationCorrupted`] if register parity fails
    ///   (run [`PtSensor::parity_scrub`] to recover);
    /// * [`SensorError::ChannelFailed`] if the TSRO yields no plausible
    ///   measurement after retries;
    /// * [`SensorError::TemperatureOutOfRange`] if the solve leaves the
    ///   characterized range;
    /// * solver errors if every Newton stage fails.
    pub fn read<R: Rng + ?Sized>(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut R,
    ) -> Result<Reading, SensorError> {
        crate::pipeline::run_conversion(self, inputs, rng)
    }

    /// Converts a batch of conditions with the calibrated sensor through
    /// the struct-of-arrays lane kernel: conversions are gated in input
    /// order, then solved jointly in [`LANES`](crate::pipeline::LANES)-wide
    /// chunks whose Newton iterations run lane-parallel. On success this is
    /// bit-identical to a hand-written [`PtSensor::read`] loop — same
    /// readings, same RNG draws in the same order (the lane solves are
    /// RNG-free and bit-identical to the scalar solver) — but substantially
    /// faster for batches past a chunk, and allocation-free per conversion
    /// once the shared workspace is warm. For whole-population batches use
    /// [`BatchPlan`](crate::pipeline::BatchPlan), which also amortizes
    /// construction and sampling.
    ///
    /// # Errors
    ///
    /// Fails with the first failing conversion's error (see
    /// [`PtSensor::read`]).
    pub fn read_batch<R: Rng + ?Sized>(
        &self,
        inputs: &[SensorInputs<'_>],
        rng: &mut R,
    ) -> Result<Vec<Reading>, SensorError> {
        crate::pipeline::lanes::read_batch_lanes(self, inputs, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverted_temp_range_rejected_at_construction() {
        let mut spec = SensorSpec::default_65nm();
        spec.temp_range = (Celsius(50.0), Celsius(0.0));
        assert!(matches!(
            PtSensor::new(Technology::n65(), spec),
            Err(SensorError::InvalidConfig {
                name: "temp_range",
                ..
            })
        ));
        let mut spec = SensorSpec::default_65nm();
        spec.temp_range = (Celsius(25.0), Celsius(25.0));
        assert!(matches!(
            PtSensor::new(Technology::n65(), spec),
            Err(SensorError::InvalidConfig {
                name: "temp_range",
                ..
            })
        ));
    }

    #[test]
    fn nonsense_hardening_rejected_at_construction() {
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.replicas = 0;
        assert!(matches!(
            PtSensor::new(Technology::n65(), spec),
            Err(SensorError::InvalidConfig {
                name: "hardening.replicas",
                ..
            })
        ));
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.retry_window_scale = 0;
        assert!(PtSensor::new(Technology::n65(), spec).is_err());
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.band_margin_low = 0.0;
        assert!(PtSensor::new(Technology::n65(), spec).is_err());
        let mut spec = SensorSpec::default_65nm();
        spec.hardening.band_margin_high = 0.5;
        assert!(PtSensor::new(Technology::n65(), spec).is_err());
    }
}
