//! Stage 2 — **gating**: majority vote over an acquisition round plus the
//! bounded widened-window retry policy.
//!
//! The gate never hands an untrusted number downstream: a channel either
//! produces a voted, band-checked frequency, degrades to `None`
//! (a lost channel — recorded in [`Health`]), or the whole conversion
//! aborts with an error. The [`Gated`] boundary type is what the solver
//! stage consumes.

use crate::bank::RoClass;
use crate::error::SensorError;
use crate::health::{Health, HealthEvent};
use crate::metrics::{PipelineMetrics, Stage, StageTimer};
use crate::pipeline::acquire::acquire_round_into;
use crate::pipeline::bands::band_for;
use crate::pipeline::Scratch;
use crate::sensor::{HardeningSpec, PtSensor, SensorInputs, SensorSpec};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_device::units::{Hertz, Volt};
use ptsim_rng::Rng;

/// Reusable buffers of the majority vote. The three vectors warm up to the
/// replica count (≤ 9) on the first round and never reallocate after.
#[derive(Debug, Clone, Default)]
pub(crate) struct VoteScratch {
    plausible: Vec<(usize, f64)>,
    values: Vec<f64>,
    inliers: Vec<f64>,
}

/// Gated measurement set of one conversion: the TSRO is load-bearing, the
/// PSROs may be lost (`None`) and degrade the solve to temperature-only.
#[derive(Debug, Clone, Copy)]
pub struct Gated {
    /// Voted thermal-sensitive RO frequency.
    pub f_tsro: Hertz,
    /// Voted NMOS process-sensitive RO frequency, if the channel survived.
    pub f_psro_n: Option<Hertz>,
    /// Voted PMOS process-sensitive RO frequency, if the channel survived.
    pub f_psro_p: Option<Hertz>,
}

/// Median of a non-empty, sorted slice: the exact middle sample for odd
/// lengths (bit-preserving), the mean of the two middles for even lengths.
pub(crate) fn sorted_median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Majority-votes one round of replica samples (`None` = implausible or
/// saturated). Returns the voted frequency, or `None` when no strict
/// majority of trustworthy replicas exists.
pub fn vote(
    hardening: &HardeningSpec,
    channel: &'static str,
    samples: &[Option<Hertz>],
    health: &mut Health,
) -> Option<Hertz> {
    vote_with(
        hardening,
        channel,
        samples,
        health,
        &mut VoteScratch::default(),
        &mut None,
    )
}

/// [`vote`] with caller-owned (reusable) buffers — the allocation-free form
/// the batch hot path uses. Identical logic and float operations.
pub(crate) fn vote_with(
    hardening: &HardeningSpec,
    channel: &'static str,
    samples: &[Option<Hertz>],
    health: &mut Health,
    vs: &mut VoteScratch,
    metrics: &mut Option<PipelineMetrics>,
) -> Option<Hertz> {
    let h = *hardening;
    let n = samples.len();
    let VoteScratch {
        plausible,
        values,
        inliers,
    } = vs;
    plausible.clear();
    plausible.extend(
        samples
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|f| (i, f.0))),
    );
    if plausible.len() * 2 <= n {
        return None;
    }
    values.clear();
    values.extend(plausible.iter().map(|&(_, f)| f));
    values.sort_by(|a, b| a.partial_cmp(b).expect("band-checked samples are finite"));
    let med = sorted_median(values);

    inliers.clear();
    for &(i, f) in plausible.iter() {
        if (f - med).abs() <= h.replica_outlier_rel * med.abs() {
            inliers.push(f);
        } else {
            health.record(HealthEvent::ReplicaOutvoted {
                channel,
                replica: i,
            });
            if let Some(m) = metrics.as_mut() {
                m.on_outvoted();
            }
        }
    }
    if inliers.len() * 2 <= n {
        return None;
    }
    inliers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let voted = sorted_median(inliers);
    let spread = (inliers[inliers.len() - 1] - inliers[0]) / voted;
    if spread > h.replica_spread_rel {
        health.record(HealthEvent::ReplicaSpread {
            channel,
            spread_rel: spread,
        });
        if let Some(m) = metrics.as_mut() {
            m.on_spread();
        }
    }
    Some(Hertz(voted))
}

/// Measures one channel with the full hardening stack: per-replica
/// plausibility check, majority vote, and bounded widened-window retries.
/// `Ok(None)` means the channel is lost (no trustworthy majority after
/// every retry).
///
/// # Errors
///
/// Propagates fatal measurement errors (saturation is handled inside the
/// acquisition round).
pub fn gate_channel<R: Rng + ?Sized>(
    sensor: &PtSensor,
    class: RoClass,
    vdd: Volt,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
) -> Result<Option<Hertz>, SensorError> {
    gate_channel_with(
        sensor,
        class,
        vdd,
        inputs,
        rng,
        ledger,
        health,
        &mut Scratch::new(),
    )
}

/// [`gate_channel`] with a caller-owned (reusable) [`Scratch`] — the
/// allocation-free form the batch hot path uses.
///
/// # Errors
///
/// See [`gate_channel`].
#[allow(clippy::too_many_arguments)] // mirrors the controller datapath
pub(crate) fn gate_channel_with<R: Rng + ?Sized>(
    sensor: &PtSensor,
    class: RoClass,
    vdd: Volt,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
    scratch: &mut Scratch,
) -> Result<Option<Hertz>, SensorError> {
    let h = sensor.spec.hardening;
    let name = class.name();
    let local_temp = sensor.faults.local_temperature(inputs.temp);
    let env = sensor.die_env(class, inputs, local_temp);
    let band = band_for(&sensor.bands, class, vdd);
    let Scratch {
        samples,
        vote,
        metrics,
        ..
    } = scratch;

    let mut attempt = 0usize;
    let mut window_scale = 1u64;
    loop {
        let acquire_timer = StageTimer::start(metrics.is_some());
        acquire_round_into(
            sensor,
            class,
            vdd,
            &env,
            &band,
            window_scale,
            rng,
            ledger,
            health,
            samples,
            metrics,
        )?;
        acquire_timer.stop(metrics, Stage::Acquire);
        if let Some(f) = vote_with(&h, name, samples, health, vote, metrics) {
            if attempt > 0 {
                health.record(HealthEvent::Recovered { channel: name });
                if let Some(m) = metrics.as_mut() {
                    m.on_recovered();
                }
            }
            return Ok(Some(f));
        }
        if attempt >= h.max_retries {
            health.record(HealthEvent::ChannelLost { channel: name });
            if let Some(m) = metrics.as_mut() {
                m.on_channel_lost();
            }
            return Ok(None);
        }
        attempt += 1;
        window_scale = h.retry_window_scale;
        health.record(HealthEvent::RetriedWindow {
            channel: name,
            window_scale,
        });
        if let Some(m) = metrics.as_mut() {
            m.on_retry();
        }
        // Retry control overhead (re-arming the gate and range logic).
        sensor.charge_digital(ledger, "retry", sensor.spec.controller_cycles / 4);
    }
}

/// The four-measurement boot-time plan: each PSRO polarity at both
/// supplies, in controller issue order.
#[must_use]
pub fn calibration_plan(spec: &SensorSpec) -> [(RoClass, Volt); 4] {
    [
        (RoClass::PsroN, spec.bank.vdd_high),
        (RoClass::PsroN, spec.bank.vdd_low),
        (RoClass::PsroP, spec.bank.vdd_high),
        (RoClass::PsroP, spec.bank.vdd_low),
    ]
}

/// Gates every measurement of the boot-time calibration plan. Calibration
/// has no degraded mode — a lost channel is fatal.
///
/// # Errors
///
/// Returns [`SensorError::ChannelFailed`] for a channel with no trustworthy
/// majority after retries, and propagates measurement errors.
pub fn gate_plan<R: Rng + ?Sized>(
    sensor: &PtSensor,
    plan: &[(RoClass, Volt); 4],
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
) -> Result<[f64; 4], SensorError> {
    gate_plan_with(
        sensor,
        plan,
        inputs,
        rng,
        ledger,
        health,
        &mut Scratch::new(),
    )
}

/// [`gate_plan`] with a caller-owned (reusable) [`Scratch`].
///
/// # Errors
///
/// See [`gate_plan`].
pub(crate) fn gate_plan_with<R: Rng + ?Sized>(
    sensor: &PtSensor,
    plan: &[(RoClass, Volt); 4],
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
    scratch: &mut Scratch,
) -> Result<[f64; 4], SensorError> {
    let mut measured = [0.0f64; 4];
    for (slot, (class, vdd)) in plan.iter().enumerate() {
        let f = gate_channel_with(sensor, *class, *vdd, inputs, rng, ledger, health, scratch)?
            .ok_or(SensorError::ChannelFailed {
                channel: class.name(),
            })?;
        measured[slot] = f.0;
    }
    Ok(measured)
}

/// Gates the three conversion measurements. The TSRO is load-bearing
/// (a lost TSRO is fatal); a lost PSRO survives as `None` and degrades the
/// solve stage to temperature-only.
///
/// # Errors
///
/// Returns [`SensorError::ChannelFailed`] when the TSRO yields no plausible
/// measurement after retries, and propagates measurement errors.
pub fn gate_conversion<R: Rng + ?Sized>(
    sensor: &PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
) -> Result<Gated, SensorError> {
    gate_conversion_with(sensor, inputs, rng, ledger, health, &mut Scratch::new())
}

/// [`gate_conversion`] with a caller-owned (reusable) [`Scratch`].
///
/// # Errors
///
/// See [`gate_conversion`].
pub(crate) fn gate_conversion_with<R: Rng + ?Sized>(
    sensor: &PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
    scratch: &mut Scratch,
) -> Result<Gated, SensorError> {
    let spec = sensor.spec;
    let f_tsro = gate_channel_with(
        sensor,
        RoClass::Tsro,
        spec.bank.vdd_tsro,
        inputs,
        rng,
        ledger,
        health,
        scratch,
    )?
    .ok_or(SensorError::ChannelFailed {
        channel: RoClass::Tsro.name(),
    })?;
    let f_psro_n = gate_channel_with(
        sensor,
        RoClass::PsroN,
        spec.bank.vdd_low,
        inputs,
        rng,
        ledger,
        health,
        scratch,
    )?;
    let f_psro_p = gate_channel_with(
        sensor,
        RoClass::PsroP,
        spec.bank.vdd_low,
        inputs,
        rng,
        ledger,
        health,
        scratch,
    )?;
    Ok(Gated {
        f_tsro,
        f_psro_n,
        f_psro_p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::process::Technology;
    use ptsim_device::units::Celsius;
    use ptsim_faults::{Channel, Fault, FaultPlan, ReplicaSel};
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn hardening() -> HardeningSpec {
        HardeningSpec::baseline()
    }

    #[test]
    fn unanimous_round_votes_the_median() {
        let h = hardening();
        let mut health = Health::nominal();
        let samples = [
            Some(Hertz(99.9e6)),
            Some(Hertz(100.0e6)),
            Some(Hertz(100.1e6)),
        ];
        let voted = vote(&h, "TSRO", &samples, &mut health).unwrap();
        assert_eq!(voted, Hertz(100.0e6));
        assert!(health.is_nominal());
    }

    #[test]
    fn single_sample_vote_is_bit_preserving() {
        let h = hardening();
        let mut health = Health::nominal();
        let f = Hertz(123.456_789e6);
        let voted = vote(&h, "TSRO", &[Some(f)], &mut health).unwrap();
        assert_eq!(voted.0.to_bits(), f.0.to_bits());
    }

    #[test]
    fn minority_of_plausible_samples_loses_the_vote() {
        let h = hardening();
        let mut health = Health::nominal();
        assert!(vote(&h, "TSRO", &[None], &mut health).is_none());
        assert!(vote(&h, "TSRO", &[Some(Hertz(1e8)), None, None], &mut health).is_none());
    }

    #[test]
    fn far_outlier_is_outvoted_and_recorded() {
        let h = hardening();
        let mut health = Health::nominal();
        let samples = [
            Some(Hertz(100.0e6)),
            Some(Hertz(100.1e6)),
            Some(Hertz(140.0e6)),
        ];
        let voted = vote(&h, "PSRO-N", &samples, &mut health).unwrap();
        assert!((voted.0 - 100.05e6).abs() < 1.0);
        assert!(health.any(|e| matches!(
            e,
            HealthEvent::ReplicaOutvoted {
                channel: "PSRO-N",
                replica: 2,
            }
        )));
    }

    #[test]
    fn excess_spread_inside_the_outlier_limit_is_flagged() {
        let mut h = hardening();
        h.replica_spread_rel = 1e-4;
        let mut health = Health::nominal();
        let samples = [
            Some(Hertz(100.0e6)),
            Some(Hertz(100.2e6)),
            Some(Hertz(100.4e6)),
        ];
        assert!(vote(&h, "TSRO", &samples, &mut health).is_some());
        assert!(health.any(|e| matches!(e, HealthEvent::ReplicaSpread { .. })));
    }

    #[test]
    fn dead_channel_widens_the_window_then_declares_loss() {
        // Retry-window widening, isolated at the gate stage: a dead RO
        // reads 0 Hz, fails the band every time, and the retry policy
        // must re-measure with the widened window exactly `max_retries`
        // times before giving up.
        let tech = Technology::n65();
        let spec = crate::sensor::SensorSpec::default_65nm();
        let mut sensor = PtSensor::new(tech, spec).unwrap();
        sensor.inject_faults(FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::PsroN,
            replica: ReplicaSel::All,
        }));
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(7);
        let mut ledger = EnergyLedger::new();
        let mut health = Health::nominal();
        let got = gate_channel(
            &sensor,
            RoClass::PsroN,
            spec.bank.vdd_low,
            &inputs,
            &mut rng,
            &mut ledger,
            &mut health,
        )
        .unwrap();
        assert!(got.is_none(), "a dead channel must be declared lost");
        let retries = health
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    HealthEvent::RetriedWindow {
                        channel: "PSRO-N",
                        window_scale,
                    } if *window_scale == spec.hardening.retry_window_scale
                )
            })
            .count();
        assert_eq!(retries, spec.hardening.max_retries);
        assert!(health.any(|e| matches!(e, HealthEvent::ChannelLost { channel: "PSRO-N" })));
        assert!(
            ledger.component("retry").0 > 0.0,
            "retry overhead must be charged"
        );
    }

    #[test]
    fn healthy_channel_gates_without_retries() {
        let sensor =
            PtSensor::new(Technology::n65(), crate::sensor::SensorSpec::default_65nm()).unwrap();
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(8);
        let mut ledger = EnergyLedger::new();
        let mut health = Health::nominal();
        let gated = gate_conversion(&sensor, &inputs, &mut rng, &mut ledger, &mut health).unwrap();
        assert!(gated.f_tsro.0 > 0.0);
        assert!(gated.f_psro_n.is_some());
        assert!(gated.f_psro_p.is_some());
        assert!(health.is_nominal());
    }
}
