//! Stage 4 — **output**: range/drift bounding, digital energy accounting,
//! and Q-format quantization of the solved state into a [`Reading`].
//!
//! The boundary types every conversion ultimately reports through —
//! [`Reading`] and [`CalibrationOutcome`] — live here; the full sensor and
//! all baselines share them, so a BJT reading and a hardened PT-sensor
//! reading carry identical health/energy bookkeeping.

use crate::calib::Calibration;
use crate::error::SensorError;
use crate::health::{Health, HealthEvent};
use crate::pipeline::gate::Gated;
use crate::pipeline::solve::Solved;
use crate::sensor::PtSensor;
use ptsim_circuit::energy::EnergyLedger;
use ptsim_circuit::fixed::Fixed;
use ptsim_device::units::{Celsius, Hertz, Joule, Volt};

/// One conversion result.
#[derive(Debug, Clone, PartialEq)]
pub struct Reading {
    /// Solved temperature (quantized through the output register).
    pub temperature: Celsius,
    /// Tracked NMOS threshold shift. Frozen at the calibration value when
    /// the sensor is degraded to temperature-only output.
    pub d_vtn: Volt,
    /// Tracked PMOS threshold shift (see [`Reading::d_vtn`]).
    pub d_vtp: Volt,
    /// Per-component energy of this conversion.
    pub energy: EnergyLedger,
    /// Measured (quantized) frequencies `(f_tsro, f_psro_n, f_psro_p)`.
    /// A lost channel reports `0 Hz`.
    pub raw_frequencies: (Hertz, Hertz, Hertz),
    /// Total Newton iterations spent in the solves (model evaluations of
    /// the bisection grid, if the ROM fallback ran).
    pub solver_iterations: usize,
    /// Self-diagnosis record of this conversion.
    pub health: Health,
}

impl Reading {
    /// Total conversion energy.
    #[must_use]
    pub fn energy_total(&self) -> Joule {
        self.energy.total()
    }

    /// A reading from a temperature-only sensor (no process readout):
    /// zero tracked threshold shifts, nominal health, and only the single
    /// measured frequency (`0 Hz` for channels the design lacks). The
    /// baseline thermometers report through this so every sensor in the
    /// comparison harness carries identical energy/health bookkeeping.
    #[must_use]
    pub fn temperature_only(
        temperature: Celsius,
        energy: EnergyLedger,
        f_meas: Hertz,
        solver_iterations: usize,
    ) -> Self {
        Reading {
            temperature,
            d_vtn: Volt(0.0),
            d_vtp: Volt(0.0),
            energy,
            raw_frequencies: (f_meas, Hertz(0.0), Hertz(0.0)),
            solver_iterations,
            health: Health::nominal(),
        }
    }
}

/// Outcome of a self-calibration pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// The stored calibration.
    pub calibration: Calibration,
    /// Energy spent by the calibration pass.
    pub energy: EnergyLedger,
    /// Newton iterations of the 4×4 decoupling solve.
    pub solver_iterations: usize,
    /// Self-diagnosis record of the calibration pass.
    pub health: Health,
}

/// Bounds and quantizes one solved conversion into a [`Reading`]: rejects
/// out-of-range temperatures, flags implausible post-calibration drift,
/// charges the solver/controller digital energy, and rounds every output
/// through the Q-format registers.
///
/// # Errors
///
/// Returns [`SensorError::TemperatureOutOfRange`] when the solve leaves
/// the characterized range.
pub fn finalize(
    sensor: &PtSensor,
    cal: &Calibration,
    gated: &Gated,
    solved: &Solved,
    mut ledger: EnergyLedger,
    mut health: Health,
) -> Result<Reading, SensorError> {
    let spec = sensor.spec;
    let Solved {
        temperature: temp,
        d_vtn,
        d_vtp,
        iterations: total_iters,
    } = *solved;

    if temp < spec.temp_range.0 .0 || temp > spec.temp_range.1 .0 {
        return Err(SensorError::TemperatureOutOfRange {
            solved: Celsius(temp),
        });
    }

    // Plausibility guard on the solved process outputs: drift beyond the
    // hardening limit means the numbers cannot be trusted.
    let h = spec.hardening;
    if (d_vtn - cal.d_vtn().0).abs() > h.max_drift.0 {
        health.record(HealthEvent::ImplausibleDrift {
            which: "d_vtn",
            drift: Volt(d_vtn - cal.d_vtn().0),
        });
    }
    if (d_vtp - cal.d_vtp().0).abs() > h.max_drift.0 {
        health.record(HealthEvent::ImplausibleDrift {
            which: "d_vtp",
            drift: Volt(d_vtp - cal.d_vtp().0),
        });
    }

    sensor.charge_digital(
        &mut ledger,
        "solver",
        total_iters as u64 * spec.solver_cycles_per_iteration,
    );
    sensor.charge_digital(&mut ledger, "controller", spec.controller_cycles);

    // Output registers quantize the reported values.
    let q = spec.qformat;
    Ok(Reading {
        temperature: Celsius(Fixed::from_f64(temp, q).to_f64()),
        d_vtn: Volt(Fixed::from_f64(d_vtn, q).to_f64()),
        d_vtp: Volt(Fixed::from_f64(d_vtp, q).to_f64()),
        energy: ledger,
        raw_frequencies: (
            gated.f_tsro,
            gated.f_psro_n.unwrap_or(Hertz(0.0)),
            gated.f_psro_p.unwrap_or(Hertz(0.0)),
        ),
        solver_iterations: total_iters,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{SensorInputs, SensorSpec};
    use ptsim_device::process::Technology;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn calibrated() -> PtSensor {
        let die = DieSample::nominal();
        let mut s = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(13);
        s.calibrate(&inputs, &mut rng).unwrap();
        s
    }

    fn gated_stub() -> Gated {
        Gated {
            f_tsro: Hertz(5.0e8),
            f_psro_n: Some(Hertz(1.0e8)),
            f_psro_p: None,
        }
    }

    #[test]
    fn out_of_range_solve_is_rejected() {
        let s = calibrated();
        let cal = *s.calibration().unwrap();
        let solved = Solved {
            temperature: 200.0,
            d_vtn: 0.0,
            d_vtp: 0.0,
            iterations: 3,
        };
        let err = finalize(
            &s,
            &cal,
            &gated_stub(),
            &solved,
            EnergyLedger::new(),
            Health::nominal(),
        )
        .unwrap_err();
        assert!(matches!(err, SensorError::TemperatureOutOfRange { .. }));
    }

    #[test]
    fn implausible_drift_is_flagged_not_silent() {
        let s = calibrated();
        let cal = *s.calibration().unwrap();
        let drift = s.spec().hardening.max_drift.0 * 2.0;
        let solved = Solved {
            temperature: 50.0,
            d_vtn: cal.d_vtn().0 + drift,
            d_vtp: cal.d_vtp().0,
            iterations: 3,
        };
        let r = finalize(
            &s,
            &cal,
            &gated_stub(),
            &solved,
            EnergyLedger::new(),
            Health::nominal(),
        )
        .unwrap();
        assert!(r
            .health
            .any(|e| matches!(e, HealthEvent::ImplausibleDrift { which: "d_vtn", .. })));
        assert!(r.health.flagged());
    }

    #[test]
    fn outputs_are_quantized_and_energy_charged() {
        let s = calibrated();
        let cal = *s.calibration().unwrap();
        let solved = Solved {
            temperature: 42.123_456_789,
            d_vtn: cal.d_vtn().0,
            d_vtp: cal.d_vtp().0,
            iterations: 4,
        };
        let r = finalize(
            &s,
            &cal,
            &gated_stub(),
            &solved,
            EnergyLedger::new(),
            Health::nominal(),
        )
        .unwrap();
        let q = s.spec().qformat;
        let expect = Fixed::from_f64(42.123_456_789, q).to_f64();
        assert_eq!(r.temperature.0.to_bits(), expect.to_bits());
        assert!(r.energy.component("solver").0 > 0.0);
        assert!(r.energy.component("controller").0 > 0.0);
        // A lost PSRO-P reports 0 Hz in the raw tuple.
        assert_eq!(r.raw_frequencies.2, Hertz(0.0));
    }
}
