//! Design-time plausibility bands — the shared "is this frequency even
//! possible?" check used by sensor construction and the gating stage.
//!
//! At design time the analytic bank model is evaluated over the full
//! characterization envelope (temperature × threshold shift × mobility
//! corners) and each oscillator/supply pair of the measurement plan gets a
//! `[margin_low · min, margin_high · max]` acceptance band. At run time the
//! gating stage rejects any replica sample outside its band before it can
//! reach the solver.

use crate::bank::{RoBank, RoClass};
use crate::sensor::SensorSpec;
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Hertz, Volt};

/// Process/temperature envelope the plausibility bands are evaluated over —
/// the design-time characterization corners, deliberately wider than any
/// die the variation model can produce. `spec.temp_range` is the
/// *application's* acceptance range for solved temperatures; the bands must
/// not reject a frequency a real out-of-range die could produce, or the
/// solve-range guard would never fire.
pub(crate) const BAND_TEMPS: (f64, f64) = (-55.0, 150.0);
/// Threshold-shift corner of the band envelope, volts.
pub(crate) const BAND_DVT: f64 = 0.045;
/// Mobility-multiplier corners of the band envelope.
pub(crate) const BAND_MU: (f64, f64) = (0.8, 1.25);

/// Design-time plausibility band of one oscillator/supply pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Oscillator the band applies to.
    pub class: RoClass,
    /// Supply the oscillator is measured at.
    pub vdd: Volt,
    /// Slowest plausible frequency.
    pub lo: Hertz,
    /// Fastest plausible frequency.
    pub hi: Hertz,
}

impl Band {
    /// Whether a measured frequency falls inside the band.
    #[must_use]
    pub fn contains(&self, f: Hertz) -> bool {
        f.0 >= self.lo.0 && f.0 <= self.hi.0
    }
}

/// Evaluates the analytic bank model over the design-corner envelope and
/// derives one `[margin_low · min, margin_high · max]` plausibility band
/// per measurement-plan pair.
#[must_use]
pub fn design_bands(tech: &Technology, bank: &RoBank, spec: &SensorSpec) -> Vec<Band> {
    let pairs = [
        (RoClass::PsroN, spec.bank.vdd_high),
        (RoClass::PsroN, spec.bank.vdd_low),
        (RoClass::PsroP, spec.bank.vdd_high),
        (RoClass::PsroP, spec.bank.vdd_low),
        (RoClass::Tsro, spec.bank.vdd_tsro),
    ];
    let h = spec.hardening;
    pairs
        .iter()
        .map(|&(class, vdd)| {
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for &temp in &[BAND_TEMPS.0, BAND_TEMPS.1] {
                for &dvtn in &[-BAND_DVT, BAND_DVT] {
                    for &dvtp in &[-BAND_DVT, BAND_DVT] {
                        for &mu_n in &[BAND_MU.0, BAND_MU.1] {
                            for &mu_p in &[BAND_MU.0, BAND_MU.1] {
                                let env = CmosEnv {
                                    temp: Celsius(temp),
                                    d_vtn: Volt(dvtn),
                                    d_vtp: Volt(dvtp),
                                    mu_n,
                                    mu_p,
                                };
                                let f = bank.frequency(tech, class, vdd, &env).0;
                                lo = lo.min(f);
                                hi = hi.max(f);
                            }
                        }
                    }
                }
            }
            Band {
                class,
                vdd,
                lo: Hertz(h.band_margin_low * lo),
                hi: Hertz(h.band_margin_high * hi),
            }
        })
        .collect()
}

/// Looks up the design band of one measurement-plan pair.
///
/// # Panics
///
/// Panics if `(class, vdd)` is not a pair [`design_bands`] produced — every
/// measurement plan the controller issues is covered by construction.
#[must_use]
pub fn band_for(bands: &[Band], class: RoClass, vdd: Volt) -> Band {
    *bands
        .iter()
        .find(|b| b.class == class && b.vdd.0.to_bits() == vdd.0.to_bits())
        .expect("measurement plan pairs always have a design band")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bands() -> Vec<Band> {
        let tech = Technology::n65();
        let spec = SensorSpec::default_65nm();
        let bank = RoBank::new(&tech, spec.bank).unwrap();
        design_bands(&tech, &bank, &spec)
    }

    #[test]
    fn one_band_per_measurement_plan_pair() {
        let b = bands();
        assert_eq!(b.len(), 5);
        let spec = SensorSpec::default_65nm();
        for (class, vdd) in [
            (RoClass::PsroN, spec.bank.vdd_high),
            (RoClass::PsroN, spec.bank.vdd_low),
            (RoClass::PsroP, spec.bank.vdd_high),
            (RoClass::PsroP, spec.bank.vdd_low),
            (RoClass::Tsro, spec.bank.vdd_tsro),
        ] {
            let band = band_for(&b, class, vdd);
            assert!(band.lo.0 > 0.0 && band.lo.0 < band.hi.0);
        }
    }

    #[test]
    fn healthy_frequencies_are_inside_their_band() {
        let tech = Technology::n65();
        let spec = SensorSpec::default_65nm();
        let bank = RoBank::new(&tech, spec.bank).unwrap();
        let b = bands();
        for t in [-40.0, 25.0, 125.0] {
            let env = CmosEnv::at(Celsius(t));
            for (class, vdd) in [
                (RoClass::Tsro, spec.bank.vdd_tsro),
                (RoClass::PsroN, spec.bank.vdd_low),
                (RoClass::PsroP, spec.bank.vdd_high),
            ] {
                let f = bank.frequency(&tech, class, vdd, &env);
                assert!(
                    band_for(&b, class, vdd).contains(f),
                    "{class:?}@{vdd:?} {t} °C outside its band"
                );
            }
        }
    }

    #[test]
    fn zero_and_absurd_frequencies_are_rejected() {
        let b = bands();
        let spec = SensorSpec::default_65nm();
        let band = band_for(&b, RoClass::Tsro, spec.bank.vdd_tsro);
        assert!(!band.contains(Hertz(0.0)));
        assert!(!band.contains(Hertz(1e15)));
    }

    #[test]
    fn wider_margins_widen_the_band() {
        let tech = Technology::n65();
        let mut spec = SensorSpec::default_65nm();
        let bank = RoBank::new(&tech, spec.bank).unwrap();
        let narrow = design_bands(&tech, &bank, &spec);
        spec.hardening.band_margin_low /= 2.0;
        spec.hardening.band_margin_high *= 2.0;
        let wide = design_bands(&tech, &bank, &spec);
        for (n, w) in narrow.iter().zip(&wide) {
            assert!(w.lo.0 < n.lo.0 && w.hi.0 > n.hi.0);
        }
    }
}
