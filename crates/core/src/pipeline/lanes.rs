//! The struct-of-arrays (SoA) **lane kernel** of the batch conversion hot
//! path.
//!
//! The staged pipeline walks one die at a time; profiling shows the batch
//! bottleneck is the latency chain of scalar `exp`/`ln`/`powf` calls inside
//! the Newton residuals. This module restructures the *solve* stage to run
//! up to [`LANES`] independent dies column-wise: every per-die scalar
//! (`ΔVtn`, measured `ln f`, Newton unknowns, …) becomes one element of a
//! `[f64; LANES]` column, and every inner loop becomes a fixed-trip loop
//! over lanes. The pure-arithmetic portions autovectorize; the libm calls
//! stay scalar (they must, for bit-identity) but run as eight *independent*
//! dependency chains the core can overlap instead of one serial chain.
//!
//! ```text
//!        scalar (AoS)                       lane kernel (SoA)
//!   die0: t ── vtn ── vtp              x[0] = [ t0  t1 … t7 ]  ┐
//!   die1: t ── vtn ── vtp    ──▶       x[1] = [vtn0 vtn1…vtn7] ├─ columns
//!   die2: t ── vtn ── vtp              x[2] = [vtp0 vtp1…vtp7] ┘
//!    ⋮  (one solve each)               (one masked 8-lane solve)
//! ```
//!
//! **Bit-identity contract.** Lane `l` of every column sees exactly the
//! float operations, in exactly the order, that the scalar solver applies
//! to die `l` — the lane residuals replicate the scalar residuals'
//! exact-memoization reuse pattern (base-point currents are reused by the
//! Jacobian columns that cannot perturb them, the shared thermal point is
//! hoisted) and [`newton_solve_lanes`] replicates the scalar iteration
//! schedule per lane. A population converted through the lane kernel is
//! therefore *bit-identical* to the retained scalar path, which remains
//! the default for single reads and the oracle every golden gate runs on.
//!
//! **Masking and fallback.** Partial chunks (population size not a
//! multiple of [`LANES`]) leave trailing lanes masked: they are excluded
//! from convergence checks and never updated. A lane whose Newton solve
//! fails (divergence, singular Jacobian) reports [`LaneSolve::Failed`] and
//! is re-run from its original inputs through the scalar escalation ladder
//! — the solves are RNG-free, so the scalar re-run reproduces the identical
//! default-tuning failure and then escalates exactly like the oracle,
//! without perturbing neighboring lanes.
//!
//! Only [`NewtonOptions::default`](crate::newton::NewtonOptions) tuning is
//! lane-parallelized (fixed damping, no adaptive state); every escalation
//! is scalar by construction.

use crate::bank::RoClass;
use crate::calib::Calibration;
use crate::error::SensorError;
use crate::health::Health;
use crate::metrics::Stage;
use crate::newton::{newton_solve_lanes, LaneSolve};
use crate::pipeline::batch::DieConversion;
use crate::pipeline::gate::{self, Gated};
use crate::pipeline::output::{self, CalibrationOutcome, Reading};
use crate::pipeline::solve::{self, Solved};
use crate::pipeline::Scratch;
use crate::sensor::{PtSensor, SensorInputs};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_device::delay::DelayCache;
use ptsim_device::units::{Celsius, Volt};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_rng::Rng;
use std::time::Instant;

pub use ptsim_device::delay::LANES;

/// Finite-difference steps of the 3×3 conversion decoupling (must match
/// the scalar solver's).
const CONV_FD_STEPS: [f64; 3] = [0.01, 1e-4, 1e-4];
/// Per-unknown step limits of the 3×3 conversion decoupling.
const CONV_STEP_LIMITS: [f64; 3] = [40.0, 0.03, 0.03];
/// Finite-difference steps of the 4×4 calibration decoupling.
const CAL_FD_STEPS: [f64; 4] = [1e-4, 1e-4, 1e-3, 1e-3];
/// Per-unknown step limits of the 4×4 calibration decoupling.
const CAL_STEP_LIMITS: [f64; 4] = [0.04, 0.04, 0.15, 0.15];

/// Column-wise carrier of up to [`LANES`] independently-gated conversions
/// against one sensor design: the per-die calibration parameters, measured
/// log-frequencies, and Newton unknowns, each stored as a `[f64; LANES]`
/// column so the lane solver's inner loops are fixed-trip.
///
/// Build one with [`LaneBatch::new`], [`LaneBatch::push`] up to [`LANES`]
/// `(calibration, gated)` pairs that [`LaneBatch::accepts`], then run
/// [`solve_gated_lanes`]. The batch is reusable: [`LaneBatch::clear`]
/// resets it without touching capacity (it owns no heap memory at all).
#[derive(Debug, Clone)]
pub struct LaneBatch {
    len: usize,
    /// Unknown columns: `x[0]` = temperature °C, `x[1]` = ΔVtn V,
    /// `x[2]` = ΔVtp V — seeded from each lane's calibration.
    x: [[f64; LANES]; 3],
    ln_ft: [f64; LANES],
    ln_fn: [f64; LANES],
    ln_fp: [f64; LANES],
    ln_scale: [f64; LANES],
    mu_n: [f64; LANES],
    mu_p: [f64; LANES],
    /// Originals retained for the per-lane scalar fallback.
    cals: [Option<Calibration>; LANES],
    gateds: [Option<Gated>; LANES],
}

impl Default for LaneBatch {
    fn default() -> Self {
        LaneBatch::new()
    }
}

impl LaneBatch {
    /// An empty batch. Masked (never-pushed) lanes carry benign finite
    /// filler so the elementwise residual arithmetic stays well-behaved in
    /// unused lanes.
    #[must_use]
    pub fn new() -> Self {
        LaneBatch {
            len: 0,
            x: [[25.0; LANES], [0.0; LANES], [0.0; LANES]],
            ln_ft: [0.0; LANES],
            ln_fn: [0.0; LANES],
            ln_fp: [0.0; LANES],
            ln_scale: [0.0; LANES],
            mu_n: [1.0; LANES],
            mu_p: [1.0; LANES],
            cals: [None; LANES],
            gateds: [None; LANES],
        }
    }

    /// Number of occupied lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no lane is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when every lane is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == LANES
    }

    /// Resets the batch to empty (no heap memory to keep warm).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Whether the lane kernel handles this `(sensor, gated)` combination.
    /// Degraded measurement sets (a lost PSRO) and characterized-model
    /// sensors take the scalar escalation path directly — the lane kernel
    /// parallelizes only the analytic joint 3×3 solve.
    #[must_use]
    pub fn accepts(sensor: &PtSensor, gated: &Gated) -> bool {
        sensor.characterized_model().is_none()
            && gated.f_psro_n.is_some()
            && gated.f_psro_p.is_some()
    }

    /// Loads one die into the next free lane and returns its lane index.
    /// The caller must have checked [`LaneBatch::accepts`] and that the
    /// batch is not full.
    ///
    /// # Panics
    ///
    /// Panics if the batch is full or `gated` is missing a PSRO.
    pub fn push(&mut self, cal: &Calibration, gated: &Gated) -> usize {
        assert!(self.len < LANES, "LaneBatch overflow");
        let (f_n, f_p) = (
            gated.f_psro_n.expect("lane push requires both PSROs"),
            gated.f_psro_p.expect("lane push requires both PSROs"),
        );
        let l = self.len;
        // Same hoisted-`ln` evaluation order as the scalar solver:
        // (f_t, f_n, f_p).
        self.ln_ft[l] = gated.f_tsro.0.ln();
        self.ln_fn[l] = f_n.0.ln();
        self.ln_fp[l] = f_p.0.ln();
        self.ln_scale[l] = cal.ln_tsro_scale();
        self.mu_n[l] = cal.mu_n();
        self.mu_p[l] = cal.mu_p();
        self.x[0][l] = cal.calib_temp().0;
        self.x[1][l] = cal.d_vtn().0;
        self.x[2][l] = cal.d_vtp().0;
        self.cals[l] = Some(*cal);
        self.gateds[l] = Some(*gated);
        self.len += 1;
        l
    }
}

/// Lane-parallel form of the scalar `solve_gated` solver:
/// solves every occupied lane of `batch` jointly, writing lane `l`'s result
/// to `out[l]` and recording its health events in `healths[l]`.
///
/// Bit-identical to running the scalar solver per lane: converged lanes
/// reproduce the scalar Newton trajectory exactly, and a failed lane falls
/// back to the full scalar escalation ladder from its original inputs
/// (recording the same `SolverRetuned`/`RomFallback` health events and
/// metrics the oracle records). Lanes beyond `batch.len()` are untouched.
///
/// Allocation-free after scratch warm-up: all solver state is fixed-size
/// stack arrays.
///
/// # Panics
///
/// Panics if `healths` or `out` are shorter than `batch.len()`.
pub fn solve_gated_lanes(
    sensor: &PtSensor,
    batch: &LaneBatch,
    healths: &mut [Health],
    scratch: &mut Scratch,
    out: &mut [Option<Result<Solved, SensorError>>],
) {
    let n = batch.len();
    assert!(
        healths.len() >= n && out.len() >= n,
        "lane buffers too short"
    );
    if n == 0 {
        return;
    }
    debug_assert!(
        sensor.characterized_model().is_none(),
        "the lane kernel is analytic-only; characterized sensors take the scalar path"
    );
    let spec = sensor.spec;
    let rings = [
        sensor.cache.ring(RoClass::Tsro),
        sensor.cache.ring(RoClass::PsroN),
        sensor.cache.ring(RoClass::PsroP),
    ];
    let vdds = [spec.bank.vdd_tsro, spec.bank.vdd_low, spec.bank.vdd_low];
    let mut active = [false; LANES];
    active[..n].fill(true);
    let mut x = batch.x;

    // Base-point cache replicating the scalar residual's exact memoization:
    // the thermal point and both drain factors are functions of the
    // temperature column only, and each device's currents are untouched by
    // the *other* device's threshold column, so the perturbed Jacobian
    // columns replay these stored values exactly as the scalar memo does.
    let th_seed = sensor.cache.thermal(spec.calib_temp);
    let mut th = [th_seed; LANES];
    let mut dt = [0.0; LANES];
    let mut dl = [0.0; LANES];
    let mut ions_n = [[0.0; LANES]; 3];
    let mut ions_p = [[0.0; LANES]; 3];

    let statuses = newton_solve_lanes(
        &mut x,
        active,
        |x: &[[f64; LANES]; 3],
         col: Option<usize>,
         live: &[bool; LANES],
         out: &mut [[f64; LANES]; 3]| {
            let rows = |nn: &[[f64; LANES]; 3],
                        pp: &[[f64; LANES]; 3],
                        out: &mut [[f64; LANES]; 3]| {
                let mut f = [0.0; LANES];
                for i in 0..3 {
                    rings[i].frequency_from_currents_lanes(&nn[i], &pp[i], vdds[i], live, &mut f);
                    if i == 0 {
                        for l in 0..LANES {
                            if live[l] {
                                out[0][l] = f[l].ln() - batch.ln_ft[l] + batch.ln_scale[l];
                            }
                        }
                    } else {
                        let ln_m = if i == 1 { &batch.ln_fn } else { &batch.ln_fp };
                        for l in 0..LANES {
                            if live[l] {
                                out[i][l] = f[l].ln() - ln_m[l];
                            }
                        }
                    }
                }
            };
            match col {
                None => {
                    // Base point: refresh every cached column (live lanes
                    // only — a retired lane's stale cache is never read).
                    th = rings[0].delay().thermal_lanes(&x[0], live);
                    DelayCache::drain_factor_lanes(&th, spec.bank.vdd_tsro, live, &mut dt);
                    DelayCache::drain_factor_lanes(&th, spec.bank.vdd_low, live, &mut dl);
                    for i in 0..3 {
                        let drains = if i == 0 { &dt } else { &dl };
                        rings[i].delay().nmos_current_lanes(
                            &th,
                            vdds[i],
                            &x[1],
                            &batch.mu_n,
                            drains,
                            live,
                            &mut ions_n[i],
                        );
                        rings[i].delay().pmos_current_lanes(
                            &th,
                            vdds[i],
                            &x[2],
                            &batch.mu_p,
                            drains,
                            live,
                            &mut ions_p[i],
                        );
                    }
                    rows(&ions_n, &ions_p, out);
                }
                Some(0) => {
                    // Temperature column: everything depends on it — fresh
                    // locals, the base cache stays resident for columns 1–2.
                    let th0 = rings[0].delay().thermal_lanes(&x[0], live);
                    let mut dt0 = [0.0; LANES];
                    let mut dl0 = [0.0; LANES];
                    DelayCache::drain_factor_lanes(&th0, spec.bank.vdd_tsro, live, &mut dt0);
                    DelayCache::drain_factor_lanes(&th0, spec.bank.vdd_low, live, &mut dl0);
                    let mut nn = [[0.0; LANES]; 3];
                    let mut pp = [[0.0; LANES]; 3];
                    for i in 0..3 {
                        let drains = if i == 0 { &dt0 } else { &dl0 };
                        rings[i].delay().nmos_current_lanes(
                            &th0,
                            vdds[i],
                            &x[1],
                            &batch.mu_n,
                            drains,
                            live,
                            &mut nn[i],
                        );
                        rings[i].delay().pmos_current_lanes(
                            &th0,
                            vdds[i],
                            &x[2],
                            &batch.mu_p,
                            drains,
                            live,
                            &mut pp[i],
                        );
                    }
                    rows(&nn, &pp, out);
                }
                Some(1) => {
                    // ΔVtn column: temperature unchanged — reuse the base
                    // thermal/drain cache and the untouched PMOS currents.
                    let mut nn = [[0.0; LANES]; 3];
                    for i in 0..3 {
                        let drains = if i == 0 { &dt } else { &dl };
                        rings[i].delay().nmos_current_lanes(
                            &th,
                            vdds[i],
                            &x[1],
                            &batch.mu_n,
                            drains,
                            live,
                            &mut nn[i],
                        );
                    }
                    rows(&nn, &ions_p, out);
                }
                Some(2) => {
                    // ΔVtp column: reuse base cache and NMOS currents.
                    let mut pp = [[0.0; LANES]; 3];
                    for i in 0..3 {
                        let drains = if i == 0 { &dt } else { &dl };
                        rings[i].delay().pmos_current_lanes(
                            &th,
                            vdds[i],
                            &x[2],
                            &batch.mu_p,
                            drains,
                            live,
                            &mut pp[i],
                        );
                    }
                    rows(&ions_n, &pp, out);
                }
                Some(j) => unreachable!("3x3 solve has no column {j}"),
            }
        },
        &CONV_FD_STEPS,
        &CONV_STEP_LIMITS,
        "conversion decoupling",
    );

    let Scratch {
        newton, metrics, ..
    } = scratch;
    for l in 0..n {
        match statuses[l] {
            LaneSolve::Converged(iterations) => {
                if let Some(m) = metrics.as_mut() {
                    // Mirrors the scalar solver's per-solve tally; the
                    // default tuning never backs off.
                    m.on_solver_iterations(iterations);
                    m.on_newton_backoffs(0);
                }
                out[l] = Some(Ok(Solved {
                    temperature: x[0][l],
                    d_vtn: x[1][l],
                    d_vtp: x[2][l],
                    iterations,
                }));
            }
            LaneSolve::Failed => {
                // Scalar fallback from the original inputs: the solve is
                // RNG-free, so this reproduces the identical default-tuning
                // failure and then escalates exactly like the oracle.
                let cal = batch.cals[l].expect("occupied lane retains its calibration");
                let gated = batch.gateds[l].expect("occupied lane retains its gated set");
                out[l] = Some(solve::solve_gated_with(
                    sensor,
                    &cal,
                    &gated,
                    &mut healths[l],
                    newton,
                    metrics,
                ));
            }
            LaneSolve::Masked => unreachable!("occupied lanes are active"),
        }
    }
}

/// Lane-parallel form of the analytic 4×4 calibration decoupling under the
/// default Newton tuning: solves lanes `0..n` jointly against per-lane
/// measured frequencies, writing unknowns column-wise into `x`
/// (`x[j][l]` = unknown `j` of lane `l`). Failed lanes are reported for
/// the caller to escalate through the scalar ladder.
///
/// Bit-identical per lane to
/// [`solve_calibration`](crate::pipeline::solve::solve_calibration) with
/// default options on the same measurements.
pub(crate) fn solve_calibration_lanes(
    sensor: &PtSensor,
    plan: &[(RoClass, Volt); 4],
    measured: &[[f64; 4]; LANES],
    n: usize,
    x: &mut [[f64; LANES]; 4],
) -> [LaneSolve; LANES] {
    debug_assert!(sensor.characterized_model().is_none());
    let t_cal = sensor.spec.calib_temp;
    // Chunk-wide hoists: the calibration temperature — and with it the
    // thermal point and per-row drain factors — is shared by every lane
    // (same sensor design, same assumed boot temperature), so what the
    // scalar solver hoists per die hoists per chunk here.
    let th = sensor.cache.thermal(t_cal);
    let th_l = [th; LANES];
    let rings = plan.map(|(class, _)| sensor.cache.ring(class));
    let drains = plan.map(|(_, vdd)| DelayCache::drain_factor(&th, vdd));
    let drains_l: [[f64; LANES]; 4] = core::array::from_fn(|i| [drains[i]; LANES]);
    let mut ln_m = [[0.0; LANES]; 4];
    for (l, m) in measured.iter().enumerate().take(n) {
        for (slot, lm) in ln_m.iter_mut().enumerate() {
            lm[l] = m[slot].ln();
        }
    }
    let mut active = [false; LANES];
    active[..n].fill(true);
    *x = [[0.0; LANES], [0.0; LANES], [1.0; LANES], [1.0; LANES]];

    let mut n_base = [[0.0; LANES]; 4];
    let mut p_base = [[0.0; LANES]; 4];
    newton_solve_lanes(
        x,
        active,
        |x: &[[f64; LANES]; 4],
         col: Option<usize>,
         live: &[bool; LANES],
         out: &mut [[f64; LANES]; 4]| {
            let rows =
                |nn: &[[f64; LANES]; 4], pp: &[[f64; LANES]; 4], out: &mut [[f64; LANES]; 4]| {
                    let mut f = [0.0; LANES];
                    for slot in 0..4 {
                        rings[slot].frequency_from_currents_lanes(
                            &nn[slot],
                            &pp[slot],
                            plan[slot].1,
                            live,
                            &mut f,
                        );
                        for l in 0..LANES {
                            if live[l] {
                                out[slot][l] = f[l].ln() - ln_m[slot][l];
                            }
                        }
                    }
                };
            // NMOS currents depend on `(x[0], x[2])`, PMOS on `(x[1], x[3])`
            // — each perturbed column recomputes only the device it touches
            // and replays the base values of the other, exactly like the
            // scalar solver's current memo.
            let n_fresh = |x: &[[f64; LANES]; 4], nn: &mut [[f64; LANES]; 4]| {
                for i in 0..4 {
                    rings[i].delay().nmos_current_lanes(
                        &th_l,
                        plan[i].1,
                        &x[0],
                        &x[2],
                        &drains_l[i],
                        live,
                        &mut nn[i],
                    );
                }
            };
            let p_fresh = |x: &[[f64; LANES]; 4], pp: &mut [[f64; LANES]; 4]| {
                for i in 0..4 {
                    rings[i].delay().pmos_current_lanes(
                        &th_l,
                        plan[i].1,
                        &x[1],
                        &x[3],
                        &drains_l[i],
                        live,
                        &mut pp[i],
                    );
                }
            };
            match col {
                None => {
                    n_fresh(x, &mut n_base);
                    p_fresh(x, &mut p_base);
                    rows(&n_base, &p_base, out);
                }
                Some(0) | Some(2) => {
                    let mut nn = [[0.0; LANES]; 4];
                    n_fresh(x, &mut nn);
                    rows(&nn, &p_base, out);
                }
                Some(1) | Some(3) => {
                    let mut pp = [[0.0; LANES]; 4];
                    p_fresh(x, &mut pp);
                    rows(&n_base, &pp, out);
                }
                Some(j) => unreachable!("4x4 solve has no column {j}"),
            }
        },
        &CAL_FD_STEPS,
        &CAL_STEP_LIMITS,
        "calibration decoupling",
    )
}

/// Converts one chunk of up to [`LANES`] dies of a population through the
/// lane kernel: per-die RNG-consuming stages (measurement gating) run
/// scalar in die order on each die's own stream, the RNG-free Newton
/// solves run lane-parallel across the chunk, and any failed or degraded
/// lane falls back to the scalar oracle. Pushes one result per die, in die
/// order. Bit-identical to converting each die through
/// [`BatchPlan::convert_with_scratch`](crate::pipeline::BatchPlan::convert_with_scratch).
///
/// Phase structure (within-die RNG draw order is exactly the scalar
/// pipeline's; dies own independent streams, so cross-die interleaving is
/// free):
///
/// ```text
/// A  per die:   gate the 4-measurement boot plan          (consumes RNG)
///    lanes:     4×4 calibration decoupling                (RNG-free)
/// A2 per die:   TSRO reference gate, ln-scale, store      (consumes RNG)
/// B  per temp:
///    B1 per die: gate the 3 conversion channels           (consumes RNG)
///    B2 lanes:   3×3 conversion decoupling                (RNG-free)
///    B3 per die: bound/quantize output, tally metrics
/// ```
// The parameters are the per-worker SoA columns (dies, rngs, output) plus
// the plan constants; a bundling struct would exist for this one call.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub(crate) fn convert_population_chunk<R: Rng>(
    sensor: &PtSensor,
    scratch: &mut Scratch,
    site: DieSite,
    boot_temp: Celsius,
    temps: &[Celsius],
    dies: &[DieSample],
    rngs: &mut [R],
    out: &mut Vec<Result<DieConversion, SensorError>>,
) {
    let n = dies.len();
    assert!(n <= LANES && rngs.len() == n, "chunk shape mismatch");
    debug_assert!(sensor.characterized_model().is_none());
    let spec = sensor.spec;
    let mut res: [Option<Result<DieConversion, SensorError>>; LANES] =
        core::array::from_fn(|_| None);
    // Mirrors the `run_*_with` wrappers: every per-die failure tallies one
    // pipeline error and parks the die's Err result.
    fn fail(
        scratch: &mut Scratch,
        slot: &mut Option<Result<DieConversion, SensorError>>,
        e: SensorError,
    ) {
        if let Some(m) = scratch.metrics.as_mut() {
            m.on_error();
        }
        *slot = Some(Err(e));
    }

    // ---- Phase A: boot-plan gating (scalar, per die) + lane calibration.
    let cal_started = Instant::now();
    let plan = gate::calibration_plan(&spec);
    let mut measured = [[0.0; 4]; LANES];
    let mut cal_state: [Option<(EnergyLedger, Health)>; LANES] = core::array::from_fn(|_| None);
    for (k, (die, rng)) in dies.iter().zip(rngs.iter_mut()).enumerate() {
        let boot = SensorInputs::new(die, site, boot_temp);
        let mut ledger = EnergyLedger::new();
        let mut health = Health::nominal();
        match gate::gate_plan_with(sensor, &plan, &boot, rng, &mut ledger, &mut health, scratch) {
            Ok(m) => {
                measured[k] = m;
                cal_state[k] = Some((ledger, health));
            }
            Err(e) => fail(scratch, &mut res[k], e),
        }
    }

    let mut x4 = [[0.0; LANES]; 4];
    let statuses = solve_calibration_lanes(sensor, &plan, &measured, n, &mut x4);

    // ---- Phase A2: per-die TSRO reference, ln-scale, calibration store.
    let mut cals: [Option<Calibration>; LANES] = [None; LANES];
    let mut outcomes: [Option<CalibrationOutcome>; LANES] = core::array::from_fn(|_| None);
    for (k, (die, rng)) in dies.iter().zip(rngs.iter_mut()).enumerate() {
        let Some((mut ledger, mut health)) = cal_state[k].take() else {
            continue;
        };
        let boot = SensorInputs::new(die, site, boot_temp);
        let (x, iters) = match statuses[k] {
            LaneSolve::Converged(iters) => ([x4[0][k], x4[1][k], x4[2][k], x4[3][k]], iters),
            LaneSolve::Failed => {
                // Scalar escalation from the original measurements —
                // reproduces the identical default-tuning failure, then
                // retunes, exactly like the oracle.
                let Scratch {
                    newton, metrics, ..
                } = &mut *scratch;
                match solve::solve_calibration_escalating(
                    sensor,
                    &plan,
                    &measured[k],
                    &mut health,
                    newton,
                    metrics,
                ) {
                    Ok(solved) => solved,
                    Err(e) => {
                        fail(scratch, &mut res[k], e);
                        continue;
                    }
                }
            }
            LaneSolve::Masked => unreachable!("dies 0..n occupy active lanes"),
        };
        sensor.charge_digital(
            &mut ledger,
            "solver",
            iters as u64 * spec.solver_cycles_per_iteration,
        );
        let f_t = match gate::gate_channel_with(
            sensor,
            RoClass::Tsro,
            spec.bank.vdd_tsro,
            &boot,
            rng,
            &mut ledger,
            &mut health,
            scratch,
        ) {
            Ok(Some(f)) => f,
            Ok(None) => {
                fail(
                    scratch,
                    &mut res[k],
                    SensorError::ChannelFailed {
                        channel: RoClass::Tsro.name(),
                    },
                );
                continue;
            }
            Err(e) => {
                fail(scratch, &mut res[k], e);
                continue;
            }
        };
        let model_env = solve::model_env(x[0], x[1], x[2], x[3], spec.calib_temp);
        let ln_f_t_model = sensor.model_ln_f(RoClass::Tsro, spec.bank.vdd_tsro, &model_env);
        let ln_scale = f_t.0.ln() - ln_f_t_model;
        sensor.charge_digital(&mut ledger, "controller", spec.controller_cycles * 2);
        let calibration = Calibration::store(
            Volt(x[0]),
            Volt(x[1]),
            x[2],
            x[3],
            ln_scale,
            spec.calib_temp,
            spec.qformat,
        );
        cals[k] = Some(calibration);
        if let Some(m) = scratch.metrics.as_mut() {
            m.on_calibration();
            m.on_solver_iterations(iters);
            m.on_health(health.status());
            m.on_span(Stage::Calibration, cal_started.elapsed());
        }
        outcomes[k] = Some(CalibrationOutcome {
            calibration,
            energy: ledger,
            solver_iterations: iters,
            health,
        });
    }

    // ---- Phase B: per-temperature conversions.
    let mut readings: [Vec<Reading>; LANES] =
        core::array::from_fn(|_| Vec::with_capacity(temps.len()));
    let mut batch = LaneBatch::new();
    let mut healths: [Health; LANES] = core::array::from_fn(|_| Health::nominal());
    let mut solved_out: [Option<Result<Solved, SensorError>>; LANES] =
        core::array::from_fn(|_| None);
    for &t in temps {
        // B1: gate every live die's three channels (scalar, per die).
        let mut work: [Option<(Gated, EnergyLedger, Health, Instant)>; LANES] =
            core::array::from_fn(|_| None);
        batch.clear();
        let mut lane_of = [usize::MAX; LANES];
        let mut lane_die = [usize::MAX; LANES];
        for (k, (die, rng)) in dies.iter().zip(rngs.iter_mut()).enumerate() {
            if res[k].is_some() || cals[k].is_none() {
                continue;
            }
            let conv_started = Instant::now();
            let cal = cals[k].expect("checked above");
            let registers = cal.parity_errors();
            if registers != 0 {
                fail(
                    scratch,
                    &mut res[k],
                    SensorError::CalibrationCorrupted { registers },
                );
                continue;
            }
            let mut ledger = EnergyLedger::new();
            let mut health = Health::nominal();
            let inputs = SensorInputs::new(die, site, t);
            let gate_started = Instant::now();
            match gate::gate_conversion_with(
                sensor,
                &inputs,
                rng,
                &mut ledger,
                &mut health,
                scratch,
            ) {
                Ok(gated) => {
                    if let Some(m) = scratch.metrics.as_mut() {
                        m.on_span(Stage::Gate, gate_started.elapsed());
                    }
                    if LaneBatch::accepts(sensor, &gated) {
                        let l = batch.push(&cal, &gated);
                        lane_of[k] = l;
                        lane_die[l] = k;
                    }
                    work[k] = Some((gated, ledger, health, conv_started));
                }
                Err(e) => fail(scratch, &mut res[k], e),
            }
        }

        // B2: lane-parallel joint solve across the chunk (RNG-free).
        let solve_started = Instant::now();
        for (l, h) in healths.iter_mut().enumerate().take(batch.len()) {
            *h = work[lane_die[l]]
                .as_ref()
                .map(|(_, _, h, _)| h.clone())
                .expect("lane dies have gated work");
            solved_out[l] = None;
        }
        solve_gated_lanes(sensor, &batch, &mut healths, scratch, &mut solved_out);
        let solve_elapsed = solve_started.elapsed();

        // B3: per-die solve pickup (scalar fallback for degraded sets),
        // output bounding/quantization, metric tallies.
        for k in 0..n {
            let Some((gated, ledger, mut health, conv_started)) = work[k].take() else {
                continue;
            };
            if res[k].is_some() {
                continue;
            }
            let cal = cals[k].expect("live dies are calibrated");
            let solved = if lane_of[k] != usize::MAX {
                let l = lane_of[k];
                health = healths[l].clone();
                solved_out[l].take().expect("lane was solved")
            } else {
                // Degraded (lost-PSRO) set: the scalar ladder handles it,
                // exactly as in the per-die pipeline.
                let Scratch {
                    newton, metrics, ..
                } = &mut *scratch;
                solve::solve_gated_with(sensor, &cal, &gated, &mut health, newton, metrics)
            };
            let solved = match solved {
                Ok(s) => {
                    if let Some(m) = scratch.metrics.as_mut() {
                        m.on_span(Stage::Solve, solve_elapsed);
                    }
                    s
                }
                Err(e) => {
                    fail(scratch, &mut res[k], e);
                    continue;
                }
            };
            let out_started = Instant::now();
            match output::finalize(sensor, &cal, &gated, &solved, ledger, health) {
                Ok(reading) => {
                    if let Some(m) = scratch.metrics.as_mut() {
                        m.on_span(Stage::Output, out_started.elapsed());
                        m.on_conversion();
                        m.on_energy_pj(reading.energy_total().0 * 1e12);
                        m.on_health(reading.health.status());
                        m.on_span(Stage::Conversion, conv_started.elapsed());
                    }
                    readings[k].push(reading);
                }
                Err(e) => fail(scratch, &mut res[k], e),
            }
        }
    }

    // ---- Collect per-die results in die order.
    for k in 0..n {
        let slot = match res[k].take() {
            Some(r) => r,
            None => Ok(DieConversion {
                calibration: outcomes[k].take().expect("successful dies calibrated"),
                readings: std::mem::take(&mut readings[k]),
            }),
        };
        out.push(slot);
    }
}

/// [`PtSensor::read_batch`]'s engine: read-path conversions chunked through
/// the lane kernel.
///
/// Gating draws run in input order on the one caller stream — exactly the
/// sequential read loop's order, since the solves that the scalar path
/// interleaves between them are RNG-free — then each chunk's lane-eligible
/// solves run jointly [`LANES`] wide, with degraded (lost-PSRO) sets
/// falling back to the scalar escalation ladder. On success, both the
/// returned readings and the RNG stream position are bit-identical to the
/// sequential composition of [`crate::pipeline::run_conversion`] (the
/// contract `crates/core/tests/batch_equivalence.rs` pins). On error the
/// first failing conversion's error is returned, like the sequential loop;
/// only the stream position past the failing input is unspecified (later
/// inputs of the same chunk may already have gated).
pub(crate) fn read_batch_lanes<R: Rng + ?Sized>(
    sensor: &PtSensor,
    inputs: &[SensorInputs<'_>],
    rng: &mut R,
) -> Result<Vec<Reading>, SensorError> {
    let mut scratch = Scratch::new();
    let mut readings = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(LANES) {
        // The per-conversion preconditions of the scalar path, hoisted per
        // chunk: `&self` guarantees calibration state cannot change
        // between the chunk's conversions.
        let cal = sensor.calibration.ok_or(SensorError::NotCalibrated)?;
        let registers = cal.parity_errors();
        if registers != 0 {
            return Err(SensorError::CalibrationCorrupted { registers });
        }
        let mut batch = LaneBatch::new();
        let mut lane_of = [usize::MAX; LANES];
        let mut work: [Option<(Gated, EnergyLedger, Health)>; LANES] =
            core::array::from_fn(|_| None);
        for (k, inp) in chunk.iter().enumerate() {
            let mut ledger = EnergyLedger::new();
            let mut health = Health::nominal();
            let gated = gate::gate_conversion_with(
                sensor,
                inp,
                rng,
                &mut ledger,
                &mut health,
                &mut scratch,
            )?;
            if LaneBatch::accepts(sensor, &gated) {
                lane_of[k] = batch.push(&cal, &gated);
            }
            work[k] = Some((gated, ledger, health));
        }
        let mut healths: [Health; LANES] = core::array::from_fn(|_| Health::nominal());
        let mut solved_out: [Option<Result<Solved, SensorError>>; LANES] =
            core::array::from_fn(|_| None);
        for k in 0..chunk.len() {
            if lane_of[k] != usize::MAX {
                healths[lane_of[k]] = work[k]
                    .as_ref()
                    .map(|(_, _, h)| h.clone())
                    .expect("gated inputs have work");
            }
        }
        solve_gated_lanes(sensor, &batch, &mut healths, &mut scratch, &mut solved_out);
        for k in 0..chunk.len() {
            let (gated, ledger, mut health) = work[k].take().expect("every chunk input gated");
            let solved = if lane_of[k] != usize::MAX {
                let l = lane_of[k];
                health = healths[l].clone();
                solved_out[l].take().expect("lane was solved")?
            } else {
                let Scratch {
                    newton, metrics, ..
                } = &mut scratch;
                solve::solve_gated_with(sensor, &cal, &gated, &mut health, newton, metrics)?
            };
            readings.push(output::finalize(
                sensor, &cal, &gated, &solved, ledger, health,
            )?);
        }
    }
    Ok(readings)
}

/// Lane-grouped conversion across *independently calibrated* sensor
/// instances of one design — the fleet service's `batch_read` drain, where
/// every die owns a sensor clone and an RNG stream. Element `k` converts
/// `inputs[k]` on `sensors[k]` drawing from `rngs[k]`, and entry `k` of
/// the result is exactly what `sensors[k].read(&inputs[k], rngs[k])` would
/// have produced — bit-identical reading, same stream position — because
/// gating draws touch only the die's own stream and the jointly-solved
/// Newton stages are RNG-free. Failures are per-element: one die's error
/// never disturbs a neighbor's conversion or stream, unlike
/// [`PtSensor::read_batch`]'s fail-fast contract on a single sensor.
///
/// Every sensor must be a clone of one prototype (same technology and
/// spec): the lane solver evaluates the shared ring/thermal model through
/// one group member, and only the per-die calibrations and gated
/// measurements vary per lane. Degraded (lost-PSRO) sets and
/// characterized-model sensors fall back to the scalar ladder per element.
///
/// # Panics
///
/// Panics if the three slices disagree in length.
pub fn read_group<R: Rng>(
    sensors: &[&PtSensor],
    inputs: &[SensorInputs<'_>],
    rngs: &mut [&mut R],
) -> Vec<Result<Reading, SensorError>> {
    let mut scratch = Scratch::new();
    let mut results = Vec::with_capacity(sensors.len());
    read_group_with(sensors, inputs, rngs, &mut scratch, &mut results);
    results
}

/// [`read_group`] with caller-owned working state: the solver [`Scratch`]
/// and the result vector are reused across calls, so a long-running caller
/// (the fleet daemon's coalescing scheduler drains thousands of groups per
/// second) pays the scratch and result-buffer allocations once per worker
/// instead of once per group. `results` is cleared and refilled; values
/// are bit-identical to [`read_group`].
///
/// # Panics
///
/// Panics if the three slices disagree in length.
pub fn read_group_with<R: Rng>(
    sensors: &[&PtSensor],
    inputs: &[SensorInputs<'_>],
    rngs: &mut [&mut R],
    scratch: &mut Scratch,
    results: &mut Vec<Result<Reading, SensorError>>,
) {
    assert!(
        sensors.len() == inputs.len() && inputs.len() == rngs.len(),
        "group shape mismatch"
    );
    results.clear();
    results.reserve(sensors.len());
    let mut start = 0;
    while start < sensors.len() {
        let len = (sensors.len() - start).min(LANES);
        let mut batch = LaneBatch::new();
        let mut lane_of = [usize::MAX; LANES];
        let mut lane_sensor: Option<&PtSensor> = None;
        let mut work: [Option<(Calibration, Gated, EnergyLedger, Health)>; LANES] =
            core::array::from_fn(|_| None);
        let mut errs: [Option<SensorError>; LANES] = core::array::from_fn(|_| None);
        for k in 0..len {
            let sensor = sensors[start + k];
            // The scalar read path's preconditions in its order: a missing
            // or corrupted calibration fails before any gating draw.
            let Some(cal) = sensor.calibration else {
                errs[k] = Some(SensorError::NotCalibrated);
                continue;
            };
            let registers = cal.parity_errors();
            if registers != 0 {
                errs[k] = Some(SensorError::CalibrationCorrupted { registers });
                continue;
            }
            let mut ledger = EnergyLedger::new();
            let mut health = Health::nominal();
            match gate::gate_conversion_with(
                sensor,
                &inputs[start + k],
                &mut *rngs[start + k],
                &mut ledger,
                &mut health,
                &mut *scratch,
            ) {
                Ok(gated) => {
                    if LaneBatch::accepts(sensor, &gated) {
                        lane_of[k] = batch.push(&cal, &gated);
                        lane_sensor = Some(sensor);
                    }
                    work[k] = Some((cal, gated, ledger, health));
                }
                Err(e) => errs[k] = Some(e),
            }
        }
        let mut healths: [Health; LANES] = core::array::from_fn(|_| Health::nominal());
        let mut solved_out: [Option<Result<Solved, SensorError>>; LANES] =
            core::array::from_fn(|_| None);
        for k in 0..len {
            if lane_of[k] != usize::MAX {
                healths[lane_of[k]] = work[k]
                    .as_ref()
                    .map(|(_, _, _, h)| h.clone())
                    .expect("lane members have gated work");
            }
        }
        if let Some(shared) = lane_sensor {
            solve_gated_lanes(shared, &batch, &mut healths, &mut *scratch, &mut solved_out);
        }
        for k in 0..len {
            if let Some(e) = errs[k].take() {
                results.push(Err(e));
                continue;
            }
            let (cal, gated, ledger, mut health) = work[k].take().expect("gated members have work");
            let sensor = sensors[start + k];
            let solved = if lane_of[k] != usize::MAX {
                let l = lane_of[k];
                health = healths[l].clone();
                solved_out[l].take().expect("lane was solved")
            } else {
                let Scratch {
                    newton, metrics, ..
                } = &mut *scratch;
                solve::solve_gated_with(sensor, &cal, &gated, &mut health, newton, metrics)
            };
            results.push(
                solved.and_then(|s| output::finalize(sensor, &cal, &gated, &s, ledger, health)),
            );
        }
        start += len;
    }
}
