//! Stage 1 — **acquisition**: one round of raw oscillator measurements.
//!
//! Each replica measurement quantizes the true oscillator frequency through
//! the auto-ranged prescaler + gated counter, charges its energy to the
//! ledger, and applies any injected faults at their physical points of
//! action. A round measures every redundant replica of one channel and
//! band-checks each sample, producing an [`Acquired`] record for the gating
//! stage to vote over.

use crate::error::SensorError;
use crate::health::{Health, HealthEvent};
use crate::metrics::PipelineMetrics;
use crate::pipeline::bands::Band;
use crate::sensor::PtSensor;
use ptsim_circuit::counter::{auto_count, GatedCounter};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_circuit::error::CircuitError;
use ptsim_device::inverter::CmosEnv;
use ptsim_device::units::{Hertz, Joule};
use ptsim_faults::Channel;
use ptsim_rng::Rng;

use crate::bank::RoClass;
use ptsim_device::units::Volt;

/// What one replica measurement targets: which oscillator, at which supply,
/// which physical replica, and how far the gate window is widened.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaMeasurement {
    /// Oscillator class being measured.
    pub class: RoClass,
    /// Supply the oscillator runs at.
    pub vdd: Volt,
    /// Physical replica index (0 for the baseline single-replica sensor).
    pub replica: usize,
    /// Gate-window stretch factor (1 on the first attempt).
    pub window_scale: u64,
}

/// One acquisition round: every replica of one channel measured once and
/// band-checked. `None` marks a sample that was implausible or saturated —
/// the gating stage treats those as untrustworthy votes.
#[derive(Debug, Clone)]
pub struct Acquired {
    /// Display name of the channel the round measured.
    pub channel: &'static str,
    /// Per-replica band-checked samples, in replica order.
    pub samples: Vec<Option<Hertz>>,
}

/// Maps an oscillator class to its fault-injection channel.
pub(crate) fn fault_channel(class: RoClass) -> Channel {
    match class {
        RoClass::Tsro => Channel::Tsro,
        RoClass::PsroN => Channel::PsroN,
        RoClass::PsroP => Channel::PsroP,
    }
}

/// Measures one oscillator replica: quantizes the true frequency through
/// the auto-ranged prescaler + gated counter and charges energy. Injected
/// faults corrupt the signal at their physical points: the ring frequency
/// before counting, the effective gate window, and the raw count before
/// reconstruction.
///
/// # Errors
///
/// Propagates counter construction/measurement errors (notably
/// [`CircuitError::CounterSaturated`], which the acquisition round maps to
/// an untrusted sample).
pub fn acquire_replica<R: Rng + ?Sized>(
    sensor: &PtSensor,
    m: &ReplicaMeasurement,
    env: &CmosEnv,
    rng: &mut R,
    ledger: &mut EnergyLedger,
) -> Result<Hertz, SensorError> {
    let ReplicaMeasurement {
        class,
        vdd,
        replica,
        window_scale,
    } = *m;
    let counter = GatedCounter::new(
        sensor.spec.counter_bits,
        sensor.spec.window_cycles * window_scale,
    )?;
    // Cached ring evaluation (bit-identical to the uncached
    // `ring.frequency`/`ring.run_energy` pair, which re-derived the device
    // constants and re-computed the frequency inside the energy model).
    let rc = sensor.cache.ring(class);
    let th = rc.thermal(env.temp);
    let f_true = rc.frequency(&th, vdd, env);
    let phase: f64 = rng.gen();
    let f_in = if sensor.faults.is_empty() {
        f_true
    } else {
        let corrupted = sensor
            .faults
            .frequency_effect(fault_channel(class), replica, f_true, rng);
        // A drifted reference clock mis-sizes every gate window, which
        // reads as a uniform scale on all reconstructed frequencies.
        Hertz(corrupted.0 * sensor.faults.ref_clock_factor())
    };
    let (counted, prescaler) = auto_count(f_in, &counter, sensor.spec.ref_clock, phase)?;
    let counted = if sensor.faults.is_empty() {
        counted
    } else {
        sensor
            .faults
            .count_effect(replica, counted, counter.max_count(), rng)
    };
    let f_meas = prescaler.undo(counter.frequency_from_count(counted, sensor.spec.ref_clock));

    // Energy: oscillator running for the window + counted edges.
    let window = counter.window(sensor.spec.ref_clock);
    ledger.add(
        class.name(),
        rc.run_energy_with(&th, vdd, env, f_true, window),
    );
    ledger.add(
        "counters",
        Joule(sensor.spec.counter_energy_per_count.0 * counted as f64),
    );
    Ok(f_meas)
}

/// Runs one acquisition round: measures every replica of `class` at `vdd`
/// under `env`, checks each sample against the design `band`, and records
/// implausible/saturated samples in `health`.
///
/// # Errors
///
/// Propagates every measurement error except counter saturation, which is
/// recorded and degraded to an untrusted (`None`) sample.
#[allow(clippy::too_many_arguments)] // mirrors the controller datapath
pub fn acquire_round<R: Rng + ?Sized>(
    sensor: &PtSensor,
    class: RoClass,
    vdd: Volt,
    env: &CmosEnv,
    band: &Band,
    window_scale: u64,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
) -> Result<Acquired, SensorError> {
    let mut samples = Vec::with_capacity(sensor.spec.hardening.replicas);
    acquire_round_into(
        sensor,
        class,
        vdd,
        env,
        band,
        window_scale,
        rng,
        ledger,
        health,
        &mut samples,
        &mut None,
    )?;
    Ok(Acquired {
        channel: class.name(),
        samples,
    })
}

/// [`acquire_round`] writing into a caller-owned (reusable) sample buffer —
/// the allocation-free form the batch hot path uses. The buffer is cleared
/// first; its warm capacity persists across rounds.
///
/// # Errors
///
/// See [`acquire_round`].
#[allow(clippy::too_many_arguments)] // mirrors the controller datapath
pub(crate) fn acquire_round_into<R: Rng + ?Sized>(
    sensor: &PtSensor,
    class: RoClass,
    vdd: Volt,
    env: &CmosEnv,
    band: &Band,
    window_scale: u64,
    rng: &mut R,
    ledger: &mut EnergyLedger,
    health: &mut Health,
    samples: &mut Vec<Option<Hertz>>,
    metrics: &mut Option<PipelineMetrics>,
) -> Result<(), SensorError> {
    let name = class.name();
    let replicas = sensor.spec.hardening.replicas;
    samples.clear();
    for replica in 0..replicas {
        let m = ReplicaMeasurement {
            class,
            vdd,
            replica,
            window_scale,
        };
        if let Some(m) = metrics.as_mut() {
            m.on_replica();
        }
        match acquire_replica(sensor, &m, env, rng, ledger) {
            Ok(f) => {
                if band.contains(f) {
                    samples.push(Some(f));
                } else {
                    health.record(HealthEvent::ImplausibleReading {
                        channel: name,
                        replica,
                    });
                    if let Some(m) = metrics.as_mut() {
                        m.on_implausible();
                    }
                    samples.push(None);
                }
            }
            Err(SensorError::Circuit(CircuitError::CounterSaturated { .. })) => {
                health.record(HealthEvent::CounterSaturated {
                    channel: name,
                    replica,
                });
                if let Some(m) = metrics.as_mut() {
                    m.on_saturated();
                }
                samples.push(None);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::bands::band_for;
    use crate::sensor::{SensorInputs, SensorSpec};
    use ptsim_device::process::Technology;
    use ptsim_device::units::Celsius;
    use ptsim_faults::{Fault, FaultPlan, ReplicaSel};
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn sensor() -> PtSensor {
        PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap()
    }

    #[test]
    fn healthy_round_yields_plausible_samples() {
        let s = sensor();
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let env = s.die_env(RoClass::Tsro, &inputs, inputs.temp);
        let vdd = s.spec().bank.vdd_tsro;
        let band = band_for(&s.bands, RoClass::Tsro, vdd);
        let mut rng = Pcg64::seed_from_u64(1);
        let mut ledger = EnergyLedger::new();
        let mut health = Health::nominal();
        let round = acquire_round(
            &s,
            RoClass::Tsro,
            vdd,
            &env,
            &band,
            1,
            &mut rng,
            &mut ledger,
            &mut health,
        )
        .unwrap();
        assert_eq!(round.channel, "TSRO");
        assert_eq!(round.samples.len(), 1);
        assert!(round.samples[0].is_some());
        assert!(health.is_nominal());
        assert!(ledger.component("TSRO").0 > 0.0);
        assert!(ledger.component("counters").0 > 0.0);
    }

    #[test]
    fn dead_stage_sample_is_rejected_by_the_band() {
        let mut s = sensor();
        s.inject_faults(FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::Tsro,
            replica: ReplicaSel::All,
        }));
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let env = s.die_env(RoClass::Tsro, &inputs, inputs.temp);
        let vdd = s.spec().bank.vdd_tsro;
        let band = band_for(&s.bands, RoClass::Tsro, vdd);
        let mut rng = Pcg64::seed_from_u64(2);
        let mut ledger = EnergyLedger::new();
        let mut health = Health::nominal();
        let round = acquire_round(
            &s,
            RoClass::Tsro,
            vdd,
            &env,
            &band,
            1,
            &mut rng,
            &mut ledger,
            &mut health,
        )
        .unwrap();
        assert_eq!(round.samples, vec![None]);
        assert!(health.any(|e| matches!(
            e,
            HealthEvent::ImplausibleReading {
                channel: "TSRO",
                ..
            }
        )));
    }

    #[test]
    fn widened_window_charges_more_counter_energy() {
        let s = sensor();
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let env = s.die_env(RoClass::Tsro, &inputs, inputs.temp);
        let vdd = s.spec().bank.vdd_tsro;
        let mut rng = Pcg64::seed_from_u64(3);
        let measure = |scale: u64, rng: &mut Pcg64| {
            let mut ledger = EnergyLedger::new();
            let m = ReplicaMeasurement {
                class: RoClass::Tsro,
                vdd,
                replica: 0,
                window_scale: scale,
            };
            acquire_replica(&s, &m, &env, rng, &mut ledger).unwrap();
            ledger.total().0
        };
        let e1 = measure(1, &mut rng);
        let e4 = measure(4, &mut rng);
        assert!(e4 > 2.0 * e1, "wider window must cost more: {e4} vs {e1}");
    }
}
