//! Stage 3 — **solving**: the Newton decoupling solves with their
//! escalation ladder (default tuning → robust tuning → characterized-ROM
//! bisection).
//!
//! The boot-time 4×4 decoupling extracts `(ΔVtn, ΔVtp, µn, µp)` from the
//! four-measurement calibration plan; the per-conversion 3×3 decoupling
//! jointly solves `(T, ΔVtn, ΔVtp)`; and a degraded sensor falls back to a
//! 1×1 temperature-only solve on the TSRO row. Every escalation is recorded
//! in [`Health`], and the [`Solved`] boundary type is what the output stage
//! consumes.

use crate::bank::RoClass;
use crate::calib::Calibration;
use crate::error::SensorError;
use crate::health::{Health, HealthEvent};
use crate::metrics::PipelineMetrics;
use crate::newton::{newton_solve_with, NewtonOptions, NewtonScratch};
use crate::pipeline::gate::Gated;
use crate::sensor::PtSensor;
use ptsim_device::delay::{DelayCache, ThermalPoint};
use ptsim_device::inverter::CmosEnv;
use ptsim_device::units::{Celsius, Hertz, Volt};

/// Step of the characterized-response bisection grid used as the last-ditch
/// solver fallback, in °C.
pub(crate) const ROM_GRID_STEP: f64 = 0.25;

/// Whether an error is a solver-convergence failure the escalation ladder
/// may recover from (as opposed to a hard configuration/measurement error).
pub(crate) fn solver_failed(e: &SensorError) -> bool {
    matches!(
        e,
        SensorError::SolverDiverged { .. }
            | SensorError::SingularJacobian { .. }
            | SensorError::IllConditioned { .. }
    )
}

/// Model environment used by the decoupling solver (golden model plus
/// hypothesized process state).
pub(crate) fn model_env(d_vtn: f64, d_vtp: f64, mu_n: f64, mu_p: f64, temp: Celsius) -> CmosEnv {
    CmosEnv {
        temp,
        d_vtn: Volt(d_vtn),
        d_vtp: Volt(d_vtp),
        mu_n,
        mu_p,
    }
}

/// A tiny exact-memoization cache for per-device on-currents inside the
/// Newton residual closures. Keys are the raw bits of the two unknowns a
/// device's current actually depends on; a hit replays exactly the values
/// the miss path computed from the same operands, so the finite-difference
/// Jacobian sweep skips re-evaluating the device a perturbation left
/// untouched (perturbing an NMOS unknown cannot change any PMOS current,
/// and vice versa). Three entries cover the sweep's reuse pattern: the
/// base iterate stays resident while the per-unknown perturbations cycle
/// through the remaining slots.
struct CurrentMemo<const R: usize> {
    keys: [(u64, u64); 3],
    vals: [[f64; R]; 3],
    stamp: [u32; 3],
    len: usize,
    clock: u32,
}

impl<const R: usize> CurrentMemo<R> {
    fn new() -> Self {
        CurrentMemo {
            keys: [(0, 0); 3],
            vals: [[0.0; R]; 3],
            stamp: [0; 3],
            len: 0,
            clock: 0,
        }
    }

    fn get_or(&mut self, key: (u64, u64), compute: impl FnOnce() -> [f64; R]) -> [f64; R] {
        self.clock += 1;
        for i in 0..self.len {
            if self.keys[i] == key {
                self.stamp[i] = self.clock;
                return self.vals[i];
            }
        }
        let slot = if self.len < self.keys.len() {
            self.len += 1;
            self.len - 1
        } else {
            // Evict the least-recently-used entry.
            (1..self.keys.len()).fold(0, |m, i| if self.stamp[i] < self.stamp[m] { i } else { m })
        };
        self.keys[slot] = key;
        self.vals[slot] = compute();
        self.stamp[slot] = self.clock;
        self.vals[slot]
    }
}

/// Solved process/temperature state of one conversion, before output
/// bounding and quantization.
#[derive(Debug, Clone, Copy)]
pub struct Solved {
    /// Solved junction temperature, °C.
    pub temperature: f64,
    /// Solved (or calibration-frozen) NMOS threshold shift, V.
    pub d_vtn: f64,
    /// Solved (or calibration-frozen) PMOS threshold shift, V.
    pub d_vtp: f64,
    /// Newton iterations (or ROM-grid model evaluations) spent.
    pub iterations: usize,
}

/// The 4×4 boot-time decoupling solve.
///
/// # Errors
///
/// Propagates Newton convergence failures under the given tuning.
pub(crate) fn solve_calibration(
    sensor: &PtSensor,
    plan: &[(RoClass, Volt); 4],
    measured: &[f64; 4],
    opts: &NewtonOptions,
    ns: &mut NewtonScratch,
) -> Result<([f64; 4], usize), SensorError> {
    let t_cal = sensor.spec.calib_temp;
    // The calibration temperature is fixed across iterations, so the shared
    // per-temperature point — and with it each row's drain-saturation
    // factor — is hoisted out of the residual entirely, as are the measured
    // log-frequencies (all bit-identical: the same pure expressions, just
    // evaluated once instead of per residual call).
    let th = sensor.cache.thermal(t_cal);
    let drains = plan.map(|(_, vdd)| DelayCache::drain_factor(&th, vdd));
    let ln_m = measured.map(f64::ln);
    const FD_STEPS: [f64; 4] = [1e-4, 1e-4, 1e-3, 1e-3];
    const STEP_LIMITS: [f64; 4] = [0.04, 0.04, 0.15, 0.15];
    let mut x = [0.0, 0.0, 1.0, 1.0];
    let iters = if sensor.characterized_model().is_some() {
        newton_solve_with(
            ns,
            &mut x,
            |v, out| {
                let env = model_env(v[0], v[1], v[2], v[3], t_cal);
                for (slot, (class, vdd)) in plan.iter().enumerate() {
                    out[slot] = sensor.model_ln_f_at_drain(*class, *vdd, &env, &th, drains[slot])
                        - ln_m[slot];
                }
            },
            &FD_STEPS,
            &STEP_LIMITS,
            opts,
            "calibration decoupling",
        )?
    } else {
        // Analytic path: evaluate per-device on-currents so the Jacobian
        // sweep can reuse the device a perturbation left untouched — the
        // NMOS currents depend only on `(v[0], v[2])` and the PMOS
        // currents only on `(v[1], v[3])` (the temperature is fixed at
        // `t_cal`). Bit-identical to the unmemoized path: a memo hit
        // replays the exact values the miss path computes, and the
        // current→delay→frequency recombination below is the same
        // arithmetic `frequency_with_drain` performs.
        let rings = plan.map(|(class, _)| sensor.cache.ring(class));
        let mut n_memo = CurrentMemo::<4>::new();
        let mut p_memo = CurrentMemo::<4>::new();
        newton_solve_with(
            ns,
            &mut x,
            |v, out| {
                let ions_n = n_memo.get_or((v[0].to_bits(), v[2].to_bits()), || {
                    core::array::from_fn(|i| {
                        rings[i]
                            .delay()
                            .nmos_current(&th, plan[i].1, v[0], v[2], drains[i])
                    })
                });
                let ions_p = p_memo.get_or((v[1].to_bits(), v[3].to_bits()), || {
                    core::array::from_fn(|i| {
                        rings[i]
                            .delay()
                            .pmos_current(&th, plan[i].1, v[1], v[3], drains[i])
                    })
                });
                for (slot, out_s) in out.iter_mut().enumerate() {
                    *out_s = rings[slot]
                        .frequency_from_currents(ions_n[slot], ions_p[slot], plan[slot].1)
                        .0
                        .ln()
                        - ln_m[slot];
                }
            },
            &FD_STEPS,
            &STEP_LIMITS,
            opts,
            "calibration decoupling",
        )?
    };
    Ok((x, iters))
}

/// The boot-time solve with its escalation: plain tuning first, the robust
/// tuning on a convergence failure (recorded in `health`).
///
/// # Errors
///
/// Propagates solver errors when both tunings fail, or any hard error.
pub(crate) fn solve_calibration_escalating(
    sensor: &PtSensor,
    plan: &[(RoClass, Volt); 4],
    measured: &[f64; 4],
    health: &mut Health,
    ns: &mut NewtonScratch,
    metrics: &mut Option<PipelineMetrics>,
) -> Result<([f64; 4], usize), SensorError> {
    match solve_calibration(sensor, plan, measured, &NewtonOptions::default(), ns) {
        Ok(solved) => Ok(solved),
        Err(e) if solver_failed(&e) => {
            health.record(HealthEvent::SolverRetuned {
                what: "calibration decoupling",
            });
            if let Some(m) = metrics.as_mut() {
                m.on_solver_retuned();
            }
            solve_calibration(sensor, plan, measured, &NewtonOptions::robust(), ns)
        }
        Err(e) => Err(e),
    }
}

/// The joint 3×3 conversion solve: `(T, ΔVtn, ΔVtp)` from `(f_t, f_n, f_p)`.
fn solve_conversion(
    sensor: &PtSensor,
    cal: &Calibration,
    f_t: Hertz,
    f_n: Hertz,
    f_p: Hertz,
    opts: &NewtonOptions,
    ns: &mut NewtonScratch,
) -> Result<([f64; 3], usize), SensorError> {
    let spec = sensor.spec;
    let ln_scale = cal.ln_tsro_scale();
    let (mu_n, mu_p) = (cal.mu_n(), cal.mu_p());
    // Measured log-frequencies are loop constants; hoisting the `ln`s out
    // of the residual is bit-identical (the subtraction order below is
    // unchanged — `ln_ft` and `ln_scale` stay separate addends).
    let (ln_ft, ln_fn, ln_fp) = (f_t.0.ln(), f_n.0.ln(), f_p.0.ln());
    // One thermal point (one `powf`) and two drain factors (one `exp`
    // each) per *distinct temperature*, shared by the three model rows and
    // — via the memo — by the two threshold-perturbed Jacobian evaluations
    // of each Newton iteration, which re-visit the iterate's temperature.
    // Exact memoization: a hit replays the identical values the miss path
    // computes from the same `t`.
    let mut point_memo: Option<(u64, ThermalPoint, f64, f64)> = None;
    const FD_STEPS: [f64; 3] = [0.01, 1e-4, 1e-4];
    const STEP_LIMITS: [f64; 3] = [40.0, 0.03, 0.03];
    // The TSRO row dominates temperature and the PSRO rows dominate the
    // thresholds, so the Jacobian is diagonally strong and quadratic
    // convergence holds even for large post-calibration drift (aging,
    // stress).
    let mut x = [cal.calib_temp().0, cal.d_vtn().0, cal.d_vtp().0];
    let iters = if sensor.characterized_model().is_some() {
        newton_solve_with(
            ns,
            &mut x,
            |v, out| {
                let env = model_env(v[1], v[2], mu_n, mu_p, Celsius(v[0]));
                let (th, drain_tsro, drain_low) = match point_memo {
                    Some((bits, th, dt, dl)) if bits == v[0].to_bits() => (th, dt, dl),
                    _ => {
                        let th = sensor.cache.thermal(env.temp);
                        let dt = DelayCache::drain_factor(&th, spec.bank.vdd_tsro);
                        let dl = DelayCache::drain_factor(&th, spec.bank.vdd_low);
                        point_memo = Some((v[0].to_bits(), th, dt, dl));
                        (th, dt, dl)
                    }
                };
                out[0] = sensor.model_ln_f_at_drain(
                    RoClass::Tsro,
                    spec.bank.vdd_tsro,
                    &env,
                    &th,
                    drain_tsro,
                ) - ln_ft
                    + ln_scale;
                out[1] = sensor.model_ln_f_at_drain(
                    RoClass::PsroN,
                    spec.bank.vdd_low,
                    &env,
                    &th,
                    drain_low,
                ) - ln_fn;
                out[2] = sensor.model_ln_f_at_drain(
                    RoClass::PsroP,
                    spec.bank.vdd_low,
                    &env,
                    &th,
                    drain_low,
                ) - ln_fp;
            },
            &FD_STEPS,
            &STEP_LIMITS,
            opts,
            "conversion decoupling",
        )?
    } else {
        // Analytic path: per-device currents with exact memoization — the
        // NMOS currents depend only on `(v[0], v[1])` and the PMOS
        // currents only on `(v[0], v[2])`, so the threshold-perturbed
        // Jacobian columns reuse the other device's currents verbatim.
        let rings = [
            sensor.cache.ring(RoClass::Tsro),
            sensor.cache.ring(RoClass::PsroN),
            sensor.cache.ring(RoClass::PsroP),
        ];
        let vdds = [spec.bank.vdd_tsro, spec.bank.vdd_low, spec.bank.vdd_low];
        let mut n_memo = CurrentMemo::<3>::new();
        let mut p_memo = CurrentMemo::<3>::new();
        newton_solve_with(
            ns,
            &mut x,
            |v, out| {
                let (th, drain_tsro, drain_low) = match point_memo {
                    Some((bits, th, dt, dl)) if bits == v[0].to_bits() => (th, dt, dl),
                    _ => {
                        let th = sensor.cache.thermal(Celsius(v[0]));
                        let dt = DelayCache::drain_factor(&th, spec.bank.vdd_tsro);
                        let dl = DelayCache::drain_factor(&th, spec.bank.vdd_low);
                        point_memo = Some((v[0].to_bits(), th, dt, dl));
                        (th, dt, dl)
                    }
                };
                let drains = [drain_tsro, drain_low, drain_low];
                let ions_n = n_memo.get_or((v[0].to_bits(), v[1].to_bits()), || {
                    core::array::from_fn(|i| {
                        rings[i]
                            .delay()
                            .nmos_current(&th, vdds[i], v[1], mu_n, drains[i])
                    })
                });
                let ions_p = p_memo.get_or((v[0].to_bits(), v[2].to_bits()), || {
                    core::array::from_fn(|i| {
                        rings[i]
                            .delay()
                            .pmos_current(&th, vdds[i], v[2], mu_p, drains[i])
                    })
                });
                out[0] = rings[0]
                    .frequency_from_currents(ions_n[0], ions_p[0], vdds[0])
                    .0
                    .ln()
                    - ln_ft
                    + ln_scale;
                out[1] = rings[1]
                    .frequency_from_currents(ions_n[1], ions_p[1], vdds[1])
                    .0
                    .ln()
                    - ln_fn;
                out[2] = rings[2]
                    .frequency_from_currents(ions_n[2], ions_p[2], vdds[2])
                    .0
                    .ln()
                    - ln_fp;
            },
            &FD_STEPS,
            &STEP_LIMITS,
            opts,
            "conversion decoupling",
        )?
    };
    Ok((x, iters))
}

/// TSRO-row residual at hypothesized temperature `t`, with the process
/// state frozen at the stored calibration and the measured log-frequency
/// (`ln_ft = f_t.ln()`) already computed — solver loops and the ROM grid
/// scan hoist the `ln` out of their per-evaluation work (bit-identical:
/// same value, same addend order).
fn tsro_residual_ln(sensor: &PtSensor, cal: &Calibration, ln_ft: f64, t: f64) -> f64 {
    let env = model_env(
        cal.d_vtn().0,
        cal.d_vtp().0,
        cal.mu_n(),
        cal.mu_p(),
        Celsius(t),
    );
    sensor.model_ln_f(RoClass::Tsro, sensor.spec.bank.vdd_tsro, &env) - ln_ft + cal.ln_tsro_scale()
}

/// Temperature-only solve on the TSRO row (1×1 Newton, escalating to the
/// robust tuning and finally the characterized-response bisection).
/// Returns `(temperature, solver work)`.
///
/// # Errors
///
/// Propagates hard (non-convergence) solver errors.
pub(crate) fn solve_temperature_only(
    sensor: &PtSensor,
    cal: &Calibration,
    f_t: Hertz,
    health: &mut Health,
    ns: &mut NewtonScratch,
    metrics: &mut Option<PipelineMetrics>,
) -> Result<(f64, usize), SensorError> {
    let ln_ft = f_t.0.ln();
    let run = |opts: &NewtonOptions, ns: &mut NewtonScratch| -> Result<(f64, usize), SensorError> {
        let mut x = [cal.calib_temp().0];
        let iters = newton_solve_with(
            ns,
            &mut x,
            |v, out| out[0] = tsro_residual_ln(sensor, cal, ln_ft, v[0]),
            &[0.01],
            &[40.0],
            opts,
            "temperature-only decoupling",
        )?;
        Ok((x[0], iters))
    };
    match run(&NewtonOptions::default(), ns) {
        Ok(solved) => Ok(solved),
        Err(e) if solver_failed(&e) => {
            health.record(HealthEvent::SolverRetuned {
                what: "temperature-only decoupling",
            });
            if let Some(m) = metrics.as_mut() {
                m.on_solver_retuned();
            }
            match run(&NewtonOptions::robust(), ns) {
                Ok(solved) => Ok(solved),
                Err(e) if solver_failed(&e) => {
                    health.record(HealthEvent::RomFallback {
                        what: "temperature-only decoupling",
                    });
                    if let Some(m) = metrics.as_mut() {
                        m.on_rom_fallback();
                    }
                    Ok(rom_bisect_temperature(sensor, cal, f_t))
                }
                Err(e) => Err(e),
            }
        }
        Err(e) => Err(e),
    }
}

/// Last-ditch solver fallback: grid-scan the characterized TSRO response
/// over (a guard band around) the acceptance range for the temperature
/// minimizing the residual. Immune to divergence by construction. Returns
/// `(temperature, model evaluations)`.
pub(crate) fn rom_bisect_temperature(
    sensor: &PtSensor,
    cal: &Calibration,
    f_t: Hertz,
) -> (f64, usize) {
    let (lo, hi) = (
        sensor.spec.temp_range.0 .0 - 10.0,
        sensor.spec.temp_range.1 .0 + 10.0,
    );
    let steps = ((hi - lo) / ROM_GRID_STEP).ceil() as usize;
    let ln_ft = f_t.0.ln();
    let mut best = (f64::INFINITY, lo);
    for i in 0..=steps {
        let t = lo + (hi - lo) * i as f64 / steps as f64;
        let r = tsro_residual_ln(sensor, cal, ln_ft, t).abs();
        if r < best.0 {
            best = (r, t);
        }
    }
    (best.1, steps + 1)
}

/// Solves one gated measurement set. With both PSROs the joint 3×3
/// decoupling runs (escalating through the robust tuning to the ROM
/// bisection); a lost PSRO degrades to the temperature-only solve with the
/// threshold shifts frozen at their calibration values.
///
/// # Errors
///
/// Propagates solver errors when every escalation stage fails.
pub fn solve_gated(
    sensor: &PtSensor,
    cal: &Calibration,
    gated: &Gated,
    health: &mut Health,
) -> Result<Solved, SensorError> {
    solve_gated_with(
        sensor,
        cal,
        gated,
        health,
        &mut NewtonScratch::new(),
        &mut None,
    )
}

/// [`solve_gated`] with a caller-owned (reusable) [`NewtonScratch`] — the
/// allocation-free form the batch hot path uses.
///
/// # Errors
///
/// See [`solve_gated`].
pub(crate) fn solve_gated_with(
    sensor: &PtSensor,
    cal: &Calibration,
    gated: &Gated,
    health: &mut Health,
    ns: &mut NewtonScratch,
    metrics: &mut Option<PipelineMetrics>,
) -> Result<Solved, SensorError> {
    let f_t = gated.f_tsro;
    let backoffs_before = ns.backoffs();
    let (temperature, d_vtn, d_vtp, iterations) = match (gated.f_psro_n, gated.f_psro_p) {
        (Some(f_n), Some(f_p)) => {
            match solve_conversion(sensor, cal, f_t, f_n, f_p, &NewtonOptions::default(), ns) {
                Ok((x, iters)) => (x[0], x[1], x[2], iters),
                Err(e) if solver_failed(&e) => {
                    health.record(HealthEvent::SolverRetuned {
                        what: "conversion decoupling",
                    });
                    if let Some(m) = metrics.as_mut() {
                        m.on_solver_retuned();
                    }
                    match solve_conversion(sensor, cal, f_t, f_n, f_p, &NewtonOptions::robust(), ns)
                    {
                        Ok((x, iters)) => (x[0], x[1], x[2], iters),
                        Err(e) if solver_failed(&e) => {
                            health.record(HealthEvent::RomFallback {
                                what: "conversion decoupling",
                            });
                            if let Some(m) = metrics.as_mut() {
                                m.on_rom_fallback();
                            }
                            let (t, iters) = rom_bisect_temperature(sensor, cal, f_t);
                            (t, cal.d_vtn().0, cal.d_vtp().0, iters)
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        _ => {
            health.record(HealthEvent::DegradedTemperatureOnly);
            if let Some(m) = metrics.as_mut() {
                m.on_degraded();
            }
            let (t, iters) = solve_temperature_only(sensor, cal, f_t, health, ns, metrics)?;
            (t, cal.d_vtn().0, cal.d_vtp().0, iters)
        }
    };
    if let Some(m) = metrics.as_mut() {
        m.on_solver_iterations(iterations);
        m.on_newton_backoffs(ns.backoffs() - backoffs_before);
    }
    Ok(Solved {
        temperature,
        d_vtn,
        d_vtp,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::RoClass;
    use crate::sensor::{SensorInputs, SensorSpec};
    use ptsim_device::process::Technology;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn calibrated() -> (PtSensor, DieSample) {
        let die = DieSample::nominal();
        let mut s = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(11);
        s.calibrate(&inputs, &mut rng).unwrap();
        (s, die)
    }

    fn true_tsro_frequency(s: &PtSensor, die: &DieSample, t: f64) -> Hertz {
        let inputs = SensorInputs::new(die, DieSite::CENTER, Celsius(t));
        let env = s.die_env(RoClass::Tsro, &inputs, Celsius(t));
        let vdd = s.spec().bank.vdd_tsro;
        s.bank().frequency(s.technology(), RoClass::Tsro, vdd, &env)
    }

    #[test]
    fn degraded_solve_freezes_thresholds_at_calibration() {
        // Degraded temperature-only mode, isolated at the solve stage: a
        // gated set with a lost PSRO must solve temperature from the TSRO
        // row alone and freeze the threshold outputs.
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let gated = Gated {
            f_tsro: true_tsro_frequency(&s, &die, 85.0),
            f_psro_n: None,
            f_psro_p: Some(Hertz(1.0e8)),
        };
        let mut health = Health::nominal();
        let solved = solve_gated(&s, &cal, &gated, &mut health).unwrap();
        assert!(health.any(|e| matches!(e, HealthEvent::DegradedTemperatureOnly)));
        assert!(
            (solved.temperature - 85.0).abs() < 3.0,
            "degraded temp {} vs 85 °C",
            solved.temperature
        );
        assert_eq!(solved.d_vtn.to_bits(), cal.d_vtn().0.to_bits());
        assert_eq!(solved.d_vtp.to_bits(), cal.d_vtp().0.to_bits());
    }

    #[test]
    fn rom_bisection_brackets_the_true_temperature() {
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let f_t = true_tsro_frequency(&s, &die, 60.0);
        let (t, evals) = rom_bisect_temperature(&s, &cal, f_t);
        assert!(
            (t - 60.0).abs() < 2.0 * ROM_GRID_STEP + 1.5,
            "ROM fallback temp {t} vs 60 °C"
        );
        assert!(evals > 100, "grid scan must cover the range: {evals} evals");
    }

    #[test]
    fn joint_solve_matches_measured_state() {
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(70.0));
        let mut rng = Pcg64::seed_from_u64(12);
        let mut ledger = ptsim_circuit::energy::EnergyLedger::new();
        let mut health = Health::nominal();
        let gated =
            crate::pipeline::gate::gate_conversion(&s, &inputs, &mut rng, &mut ledger, &mut health)
                .unwrap();
        let solved = solve_gated(&s, &cal, &gated, &mut health).unwrap();
        assert!((solved.temperature - 70.0).abs() < 1.5);
        assert!(solved.iterations > 0);
        assert!(health.is_nominal());
    }

    #[test]
    fn escalation_preserves_rng_free_purity() {
        // The solve stage consumes no RNG — same gated input, same output.
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let gated = Gated {
            f_tsro: true_tsro_frequency(&s, &die, 40.0),
            f_psro_n: None,
            f_psro_p: None,
        };
        let mut h1 = Health::nominal();
        let mut h2 = Health::nominal();
        let a = solve_gated(&s, &cal, &gated, &mut h1).unwrap();
        let b = solve_gated(&s, &cal, &gated, &mut h2).unwrap();
        assert_eq!(a.temperature.to_bits(), b.temperature.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }
}
