//! Stage 3 — **solving**: the Newton decoupling solves with their
//! escalation ladder (default tuning → robust tuning → characterized-ROM
//! bisection).
//!
//! The boot-time 4×4 decoupling extracts `(ΔVtn, ΔVtp, µn, µp)` from the
//! four-measurement calibration plan; the per-conversion 3×3 decoupling
//! jointly solves `(T, ΔVtn, ΔVtp)`; and a degraded sensor falls back to a
//! 1×1 temperature-only solve on the TSRO row. Every escalation is recorded
//! in [`Health`], and the [`Solved`] boundary type is what the output stage
//! consumes.

use crate::bank::RoClass;
use crate::calib::Calibration;
use crate::error::SensorError;
use crate::health::{Health, HealthEvent};
use crate::newton::{newton_solve, NewtonOptions};
use crate::pipeline::gate::Gated;
use crate::sensor::PtSensor;
use ptsim_device::inverter::CmosEnv;
use ptsim_device::units::{Celsius, Hertz, Volt};

/// Step of the characterized-response bisection grid used as the last-ditch
/// solver fallback, in °C.
pub(crate) const ROM_GRID_STEP: f64 = 0.25;

/// Whether an error is a solver-convergence failure the escalation ladder
/// may recover from (as opposed to a hard configuration/measurement error).
pub(crate) fn solver_failed(e: &SensorError) -> bool {
    matches!(
        e,
        SensorError::SolverDiverged { .. }
            | SensorError::SingularJacobian { .. }
            | SensorError::IllConditioned { .. }
    )
}

/// Model environment used by the decoupling solver (golden model plus
/// hypothesized process state).
pub(crate) fn model_env(d_vtn: f64, d_vtp: f64, mu_n: f64, mu_p: f64, temp: Celsius) -> CmosEnv {
    CmosEnv {
        temp,
        d_vtn: Volt(d_vtn),
        d_vtp: Volt(d_vtp),
        mu_n,
        mu_p,
    }
}

/// Solved process/temperature state of one conversion, before output
/// bounding and quantization.
#[derive(Debug, Clone, Copy)]
pub struct Solved {
    /// Solved junction temperature, °C.
    pub temperature: f64,
    /// Solved (or calibration-frozen) NMOS threshold shift, V.
    pub d_vtn: f64,
    /// Solved (or calibration-frozen) PMOS threshold shift, V.
    pub d_vtp: f64,
    /// Newton iterations (or ROM-grid model evaluations) spent.
    pub iterations: usize,
}

/// The 4×4 boot-time decoupling solve.
///
/// # Errors
///
/// Propagates Newton convergence failures under the given tuning.
pub(crate) fn solve_calibration(
    sensor: &PtSensor,
    plan: &[(RoClass, Volt); 4],
    measured: &[f64; 4],
    opts: &NewtonOptions,
) -> Result<([f64; 4], usize), SensorError> {
    let t_cal = sensor.spec.calib_temp;
    let mut x = [0.0, 0.0, 1.0, 1.0];
    let iters = newton_solve(
        &mut x,
        |v: &[f64]| -> Vec<f64> {
            let env = model_env(v[0], v[1], v[2], v[3], t_cal);
            plan.iter()
                .zip(measured)
                .map(|((class, vdd), m)| sensor.model_ln_f(*class, *vdd, &env) - m.ln())
                .collect()
        },
        &[1e-4, 1e-4, 1e-3, 1e-3],
        &[0.04, 0.04, 0.15, 0.15],
        opts,
        "calibration decoupling",
    )?;
    Ok((x, iters))
}

/// The boot-time solve with its escalation: plain tuning first, the robust
/// tuning on a convergence failure (recorded in `health`).
///
/// # Errors
///
/// Propagates solver errors when both tunings fail, or any hard error.
pub(crate) fn solve_calibration_escalating(
    sensor: &PtSensor,
    plan: &[(RoClass, Volt); 4],
    measured: &[f64; 4],
    health: &mut Health,
) -> Result<([f64; 4], usize), SensorError> {
    match solve_calibration(sensor, plan, measured, &NewtonOptions::default()) {
        Ok(solved) => Ok(solved),
        Err(e) if solver_failed(&e) => {
            health.record(HealthEvent::SolverRetuned {
                what: "calibration decoupling",
            });
            solve_calibration(sensor, plan, measured, &NewtonOptions::robust())
        }
        Err(e) => Err(e),
    }
}

/// The joint 3×3 conversion solve: `(T, ΔVtn, ΔVtp)` from `(f_t, f_n, f_p)`.
fn solve_conversion(
    sensor: &PtSensor,
    cal: &Calibration,
    f_t: Hertz,
    f_n: Hertz,
    f_p: Hertz,
    opts: &NewtonOptions,
) -> Result<([f64; 3], usize), SensorError> {
    let spec = sensor.spec;
    let ln_scale = cal.ln_tsro_scale();
    let (mu_n, mu_p) = (cal.mu_n(), cal.mu_p());
    // The TSRO row dominates temperature and the PSRO rows dominate the
    // thresholds, so the Jacobian is diagonally strong and quadratic
    // convergence holds even for large post-calibration drift (aging,
    // stress).
    let mut x = [cal.calib_temp().0, cal.d_vtn().0, cal.d_vtp().0];
    let iters = newton_solve(
        &mut x,
        |v| {
            let env = model_env(v[1], v[2], mu_n, mu_p, Celsius(v[0]));
            vec![
                sensor.model_ln_f(RoClass::Tsro, spec.bank.vdd_tsro, &env) - f_t.0.ln() + ln_scale,
                sensor.model_ln_f(RoClass::PsroN, spec.bank.vdd_low, &env) - f_n.0.ln(),
                sensor.model_ln_f(RoClass::PsroP, spec.bank.vdd_low, &env) - f_p.0.ln(),
            ]
        },
        &[0.01, 1e-4, 1e-4],
        &[40.0, 0.03, 0.03],
        opts,
        "conversion decoupling",
    )?;
    Ok((x, iters))
}

/// TSRO-row residual at hypothesized temperature `t`, with the process
/// state frozen at the stored calibration.
fn tsro_residual(sensor: &PtSensor, cal: &Calibration, f_t: Hertz, t: f64) -> f64 {
    let env = model_env(
        cal.d_vtn().0,
        cal.d_vtp().0,
        cal.mu_n(),
        cal.mu_p(),
        Celsius(t),
    );
    sensor.model_ln_f(RoClass::Tsro, sensor.spec.bank.vdd_tsro, &env) - f_t.0.ln()
        + cal.ln_tsro_scale()
}

/// Temperature-only solve on the TSRO row (1×1 Newton, escalating to the
/// robust tuning and finally the characterized-response bisection).
/// Returns `(temperature, solver work)`.
///
/// # Errors
///
/// Propagates hard (non-convergence) solver errors.
pub(crate) fn solve_temperature_only(
    sensor: &PtSensor,
    cal: &Calibration,
    f_t: Hertz,
    health: &mut Health,
) -> Result<(f64, usize), SensorError> {
    let run = |opts: &NewtonOptions| -> Result<(f64, usize), SensorError> {
        let mut x = [cal.calib_temp().0];
        let iters = newton_solve(
            &mut x,
            |v| vec![tsro_residual(sensor, cal, f_t, v[0])],
            &[0.01],
            &[40.0],
            opts,
            "temperature-only decoupling",
        )?;
        Ok((x[0], iters))
    };
    match run(&NewtonOptions::default()) {
        Ok(solved) => Ok(solved),
        Err(e) if solver_failed(&e) => {
            health.record(HealthEvent::SolverRetuned {
                what: "temperature-only decoupling",
            });
            match run(&NewtonOptions::robust()) {
                Ok(solved) => Ok(solved),
                Err(e) if solver_failed(&e) => {
                    health.record(HealthEvent::RomFallback {
                        what: "temperature-only decoupling",
                    });
                    Ok(rom_bisect_temperature(sensor, cal, f_t))
                }
                Err(e) => Err(e),
            }
        }
        Err(e) => Err(e),
    }
}

/// Last-ditch solver fallback: grid-scan the characterized TSRO response
/// over (a guard band around) the acceptance range for the temperature
/// minimizing the residual. Immune to divergence by construction. Returns
/// `(temperature, model evaluations)`.
pub(crate) fn rom_bisect_temperature(
    sensor: &PtSensor,
    cal: &Calibration,
    f_t: Hertz,
) -> (f64, usize) {
    let (lo, hi) = (
        sensor.spec.temp_range.0 .0 - 10.0,
        sensor.spec.temp_range.1 .0 + 10.0,
    );
    let steps = ((hi - lo) / ROM_GRID_STEP).ceil() as usize;
    let mut best = (f64::INFINITY, lo);
    for i in 0..=steps {
        let t = lo + (hi - lo) * i as f64 / steps as f64;
        let r = tsro_residual(sensor, cal, f_t, t).abs();
        if r < best.0 {
            best = (r, t);
        }
    }
    (best.1, steps + 1)
}

/// Solves one gated measurement set. With both PSROs the joint 3×3
/// decoupling runs (escalating through the robust tuning to the ROM
/// bisection); a lost PSRO degrades to the temperature-only solve with the
/// threshold shifts frozen at their calibration values.
///
/// # Errors
///
/// Propagates solver errors when every escalation stage fails.
pub fn solve_gated(
    sensor: &PtSensor,
    cal: &Calibration,
    gated: &Gated,
    health: &mut Health,
) -> Result<Solved, SensorError> {
    let f_t = gated.f_tsro;
    let (temperature, d_vtn, d_vtp, iterations) = match (gated.f_psro_n, gated.f_psro_p) {
        (Some(f_n), Some(f_p)) => {
            match solve_conversion(sensor, cal, f_t, f_n, f_p, &NewtonOptions::default()) {
                Ok((x, iters)) => (x[0], x[1], x[2], iters),
                Err(e) if solver_failed(&e) => {
                    health.record(HealthEvent::SolverRetuned {
                        what: "conversion decoupling",
                    });
                    match solve_conversion(sensor, cal, f_t, f_n, f_p, &NewtonOptions::robust()) {
                        Ok((x, iters)) => (x[0], x[1], x[2], iters),
                        Err(e) if solver_failed(&e) => {
                            health.record(HealthEvent::RomFallback {
                                what: "conversion decoupling",
                            });
                            let (t, iters) = rom_bisect_temperature(sensor, cal, f_t);
                            (t, cal.d_vtn().0, cal.d_vtp().0, iters)
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        _ => {
            health.record(HealthEvent::DegradedTemperatureOnly);
            let (t, iters) = solve_temperature_only(sensor, cal, f_t, health)?;
            (t, cal.d_vtn().0, cal.d_vtp().0, iters)
        }
    };
    Ok(Solved {
        temperature,
        d_vtn,
        d_vtp,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::RoClass;
    use crate::sensor::{SensorInputs, SensorSpec};
    use ptsim_device::process::Technology;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn calibrated() -> (PtSensor, DieSample) {
        let die = DieSample::nominal();
        let mut s = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(11);
        s.calibrate(&inputs, &mut rng).unwrap();
        (s, die)
    }

    fn true_tsro_frequency(s: &PtSensor, die: &DieSample, t: f64) -> Hertz {
        let inputs = SensorInputs::new(die, DieSite::CENTER, Celsius(t));
        let env = s.die_env(RoClass::Tsro, &inputs, Celsius(t));
        let vdd = s.spec().bank.vdd_tsro;
        s.bank().frequency(s.technology(), RoClass::Tsro, vdd, &env)
    }

    #[test]
    fn degraded_solve_freezes_thresholds_at_calibration() {
        // Degraded temperature-only mode, isolated at the solve stage: a
        // gated set with a lost PSRO must solve temperature from the TSRO
        // row alone and freeze the threshold outputs.
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let gated = Gated {
            f_tsro: true_tsro_frequency(&s, &die, 85.0),
            f_psro_n: None,
            f_psro_p: Some(Hertz(1.0e8)),
        };
        let mut health = Health::nominal();
        let solved = solve_gated(&s, &cal, &gated, &mut health).unwrap();
        assert!(health.any(|e| matches!(e, HealthEvent::DegradedTemperatureOnly)));
        assert!(
            (solved.temperature - 85.0).abs() < 3.0,
            "degraded temp {} vs 85 °C",
            solved.temperature
        );
        assert_eq!(solved.d_vtn.to_bits(), cal.d_vtn().0.to_bits());
        assert_eq!(solved.d_vtp.to_bits(), cal.d_vtp().0.to_bits());
    }

    #[test]
    fn rom_bisection_brackets_the_true_temperature() {
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let f_t = true_tsro_frequency(&s, &die, 60.0);
        let (t, evals) = rom_bisect_temperature(&s, &cal, f_t);
        assert!(
            (t - 60.0).abs() < 2.0 * ROM_GRID_STEP + 1.5,
            "ROM fallback temp {t} vs 60 °C"
        );
        assert!(evals > 100, "grid scan must cover the range: {evals} evals");
    }

    #[test]
    fn joint_solve_matches_measured_state() {
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(70.0));
        let mut rng = Pcg64::seed_from_u64(12);
        let mut ledger = ptsim_circuit::energy::EnergyLedger::new();
        let mut health = Health::nominal();
        let gated =
            crate::pipeline::gate::gate_conversion(&s, &inputs, &mut rng, &mut ledger, &mut health)
                .unwrap();
        let solved = solve_gated(&s, &cal, &gated, &mut health).unwrap();
        assert!((solved.temperature - 70.0).abs() < 1.5);
        assert!(solved.iterations > 0);
        assert!(health.is_nominal());
    }

    #[test]
    fn escalation_preserves_rng_free_purity() {
        // The solve stage consumes no RNG — same gated input, same output.
        let (s, die) = calibrated();
        let cal = *s.calibration().unwrap();
        let gated = Gated {
            f_tsro: true_tsro_frequency(&s, &die, 40.0),
            f_psro_n: None,
            f_psro_p: None,
        };
        let mut h1 = Health::nominal();
        let mut h2 = Health::nominal();
        let a = solve_gated(&s, &cal, &gated, &mut h1).unwrap();
        let b = solve_gated(&s, &cal, &gated, &mut h2).unwrap();
        assert_eq!(a.temperature.to_bits(), b.temperature.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }
}
