//! The staged conversion pipeline.
//!
//! Every sensor conversion flows through four explicit stages with typed
//! boundaries, each small enough to unit-test in isolation:
//!
//! ```text
//!             ┌──────────┐   ┌────────┐   ┌────────┐   ┌──────────────────┐
//!  inputs ──▶ │ acquire  │──▶│  gate  │──▶│ solve  │──▶│      output      │
//!             └──────────┘   └────────┘   └────────┘   └──────────────────┘
//!               Acquired       Gated        Solved      Reading + Health
//! ```
//!
//! * [`acquire`] — raw replica measurements through the prescaler/counter,
//!   with faults applied at their physical points ([`Acquired`]).
//! * [`gate`] — plausibility bands, majority vote, and the widened-window
//!   retry policy ([`Gated`]).
//! * [`solve`] — the Newton decoupling solves and their escalation ladder
//!   ([`Solved`]).
//! * [`output`] — range/drift bounding, energy accounting, Q-format
//!   quantization ([`Reading`], [`CalibrationOutcome`]).
//!
//! [`run_conversion`] and [`run_calibration`] are the thin compositions
//! [`PtSensor::read`] and [`PtSensor::calibrate`] delegate to; they are
//! bit-identical to the pre-pipeline monolithic implementations (same RNG
//! draws and float ops in the same order). [`batch`] adds the multi-die
//! [`BatchPlan`] API, and the [`Conversion`] trait is the object-safe
//! surface the full sensor and every baseline thermometer share.

pub mod acquire;
pub mod bands;
pub mod batch;
pub mod gate;
pub mod lanes;
pub mod output;
pub mod solve;

pub use acquire::{Acquired, ReplicaMeasurement};
pub use bands::{band_for, design_bands, Band};
pub use batch::{BatchPlan, DieConversion};
pub use gate::Gated;
pub use lanes::{read_group, read_group_with, solve_gated_lanes, LaneBatch, LANES};
pub use output::{CalibrationOutcome, Reading};
pub use solve::Solved;

use crate::calib::Calibration;
use crate::error::SensorError;
use crate::health::Health;
use crate::metrics::{PipelineMetrics, Stage, StageTimer};
use crate::newton::NewtonScratch;
use crate::sensor::{PtSensor, SensorInputs};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_device::units::{Hertz, Volt};
use ptsim_rng::{Rng, RngCore};

/// Reusable per-worker workspace of the conversion pipeline: the acquisition
/// sample buffer, the majority-vote buffers, and the Newton solver arrays.
///
/// Construction is free (no heap allocation happens until the first
/// conversion warms the buffers up, and the Newton arrays are inline), so
/// the convenience entry points create one per call; the batch paths
/// ([`PtSensor::read_batch`](crate::PtSensor::read_batch),
/// [`BatchPlan::run_population`]) create one per worker and reuse it, making
/// every conversion after the first perform **zero heap allocations** on the
/// healthy analytic path.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pub(crate) samples: Vec<Option<Hertz>>,
    pub(crate) vote: gate::VoteScratch,
    pub(crate) newton: NewtonScratch,
    pub(crate) metrics: Option<PipelineMetrics>,
}

impl Scratch {
    /// Empty workspace (allocates nothing).
    #[must_use]
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Workspace with an attached [`PipelineMetrics`]: every conversion run
    /// through it records counters, histograms, and span timings. The
    /// readings themselves stay bit-identical — observability reads, never
    /// perturbs.
    #[must_use]
    pub fn with_metrics() -> Self {
        Scratch {
            metrics: Some(PipelineMetrics::new()),
            ..Scratch::default()
        }
    }

    /// The attached metrics, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_ref()
    }

    /// Mutable access to the attached metrics, if any.
    pub fn metrics_mut(&mut self) -> Option<&mut PipelineMetrics> {
        self.metrics.as_mut()
    }

    /// Detaches and returns the metrics (e.g. to merge per-worker instances
    /// after a batch run). The scratch keeps its warm buffers.
    pub fn take_metrics(&mut self) -> Option<PipelineMetrics> {
        self.metrics.take()
    }
}

/// One full conversion through the staged pipeline: gate every channel,
/// solve the decoupling, bound and quantize the output.
///
/// This is the body of [`PtSensor::read`]; see it for the error contract.
///
/// # Errors
///
/// See [`PtSensor::read`].
pub fn run_conversion<R: Rng + ?Sized>(
    sensor: &PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
) -> Result<Reading, SensorError> {
    run_conversion_with(sensor, inputs, rng, &mut Scratch::new())
}

/// [`run_conversion`] with a caller-owned (reusable) [`Scratch`]: after the
/// first conversion warms the workspace up, the healthy analytic path
/// performs zero heap allocations per conversion. Bit-identical to
/// [`run_conversion`] — same RNG draws and float operations in the same
/// order.
///
/// # Errors
///
/// See [`PtSensor::read`].
pub fn run_conversion_with<R: Rng + ?Sized>(
    sensor: &PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    scratch: &mut Scratch,
) -> Result<Reading, SensorError> {
    let result = run_conversion_inner(sensor, inputs, rng, scratch);
    if result.is_err() {
        if let Some(m) = scratch.metrics.as_mut() {
            m.on_error();
        }
    }
    result
}

/// Body of [`run_conversion_with`], instrumented. The metrics hooks only
/// read pipeline state; the RNG draws and float operations are unchanged.
fn run_conversion_inner<R: Rng + ?Sized>(
    sensor: &PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    scratch: &mut Scratch,
) -> Result<Reading, SensorError> {
    let total = StageTimer::start(scratch.metrics.is_some());
    let cal = sensor.calibration.ok_or(SensorError::NotCalibrated)?;
    let registers = cal.parity_errors();
    if registers != 0 {
        return Err(SensorError::CalibrationCorrupted { registers });
    }
    let mut ledger = EnergyLedger::new();
    let mut health = Health::nominal();

    let gate_timer = StageTimer::start(scratch.metrics.is_some());
    let gated = gate::gate_conversion_with(sensor, inputs, rng, &mut ledger, &mut health, scratch)?;
    gate_timer.stop(&mut scratch.metrics, Stage::Gate);

    let Scratch {
        newton, metrics, ..
    } = scratch;
    let solve_timer = StageTimer::start(metrics.is_some());
    let solved = solve::solve_gated_with(sensor, &cal, &gated, &mut health, newton, metrics)?;
    solve_timer.stop(metrics, Stage::Solve);

    let out_timer = StageTimer::start(metrics.is_some());
    let reading = output::finalize(sensor, &cal, &gated, &solved, ledger, health)?;
    out_timer.stop(metrics, Stage::Output);

    if let Some(m) = metrics.as_mut() {
        m.on_conversion();
        m.on_energy_pj(reading.energy_total().0 * 1e12);
        m.on_health(reading.health.status());
    }
    total.stop(metrics, Stage::Conversion);
    Ok(reading)
}

/// One full self-calibration pass through the staged pipeline: gate the
/// four-measurement boot plan, run the 4×4 decoupling (with escalation),
/// then absorb the TSRO's local mismatch into a stored log-scale.
///
/// This is the body of [`PtSensor::calibrate`]; see it for the error
/// contract.
///
/// # Errors
///
/// See [`PtSensor::calibrate`].
pub fn run_calibration<R: Rng + ?Sized>(
    sensor: &mut PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
) -> Result<CalibrationOutcome, SensorError> {
    run_calibration_with(sensor, inputs, rng, &mut Scratch::new())
}

/// [`run_calibration`] with a caller-owned (reusable) [`Scratch`].
/// Bit-identical to [`run_calibration`].
///
/// # Errors
///
/// See [`PtSensor::calibrate`].
pub fn run_calibration_with<R: Rng + ?Sized>(
    sensor: &mut PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    scratch: &mut Scratch,
) -> Result<CalibrationOutcome, SensorError> {
    let result = run_calibration_inner(sensor, inputs, rng, scratch);
    if result.is_err() {
        if let Some(m) = scratch.metrics.as_mut() {
            m.on_error();
        }
    }
    result
}

/// Body of [`run_calibration_with`], instrumented. The metrics hooks only
/// read pipeline state; the RNG draws and float operations are unchanged.
fn run_calibration_inner<R: Rng + ?Sized>(
    sensor: &mut PtSensor,
    inputs: &SensorInputs<'_>,
    rng: &mut R,
    scratch: &mut Scratch,
) -> Result<CalibrationOutcome, SensorError> {
    let total = StageTimer::start(scratch.metrics.is_some());
    let mut ledger = EnergyLedger::new();
    let mut health = Health::nominal();
    let spec = sensor.spec;

    // Four PSRO measurements: each polarity at both supplies.
    let plan = gate::calibration_plan(&spec);
    let measured = gate::gate_plan_with(
        sensor,
        &plan,
        inputs,
        rng,
        &mut ledger,
        &mut health,
        scratch,
    )?;

    // 4×4 decoupling at the assumed calibration temperature.
    let (x, iters) = {
        let Scratch {
            newton, metrics, ..
        } = &mut *scratch;
        solve::solve_calibration_escalating(sensor, &plan, &measured, &mut health, newton, metrics)?
    };
    sensor.charge_digital(
        &mut ledger,
        "solver",
        iters as u64 * spec.solver_cycles_per_iteration,
    );

    // TSRO reference: absorb its local mismatch into a stored log-scale.
    let f_t = gate::gate_channel_with(
        sensor,
        crate::bank::RoClass::Tsro,
        spec.bank.vdd_tsro,
        inputs,
        rng,
        &mut ledger,
        &mut health,
        scratch,
    )?
    .ok_or(SensorError::ChannelFailed {
        channel: crate::bank::RoClass::Tsro.name(),
    })?;
    let model_env = solve::model_env(x[0], x[1], x[2], x[3], spec.calib_temp);
    let ln_f_t_model =
        sensor.model_ln_f(crate::bank::RoClass::Tsro, spec.bank.vdd_tsro, &model_env);
    let ln_scale = f_t.0.ln() - ln_f_t_model;

    sensor.charge_digital(&mut ledger, "controller", spec.controller_cycles * 2);

    let calibration = Calibration::store(
        Volt(x[0]),
        Volt(x[1]),
        x[2],
        x[3],
        ln_scale,
        spec.calib_temp,
        spec.qformat,
    );
    sensor.calibration = Some(calibration);
    if let Some(m) = scratch.metrics.as_mut() {
        m.on_calibration();
        m.on_solver_iterations(iters);
        m.on_health(health.status());
    }
    total.stop(&mut scratch.metrics, Stage::Calibration);
    Ok(CalibrationOutcome {
        calibration,
        energy: ledger,
        solver_iterations: iters,
        health,
    })
}

/// The shared conversion surface: everything that can be prepared once and
/// then turn die conditions into a [`Reading`] — the full PT sensor and
/// every baseline thermometer alike.
///
/// Object-safe on purpose (`&mut dyn RngCore`), so heterogeneous sensor
/// collections can be driven through one loop, and with a provided
/// [`Conversion::convert_batch`] so callers amortize per-conversion setup
/// without caring which sensor they hold.
pub trait Conversion {
    /// One-time per-die preparation (self-calibration, trimming, binning)
    /// under the given boot conditions.
    ///
    /// # Errors
    ///
    /// Implementation-specific: calibration solve/measurement failures.
    fn prepare(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SensorError>;

    /// One conversion under the given die conditions.
    ///
    /// # Errors
    ///
    /// Implementation-specific: measurement or solve failures.
    fn convert(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<Reading, SensorError>;

    /// Converts a batch of conditions in order, sharing the prepared state.
    /// The default is the sequential composition of [`Conversion::convert`]
    /// (bit-identical to a caller's hand-written loop).
    ///
    /// # Errors
    ///
    /// Fails on the first failing conversion.
    fn convert_batch(
        &self,
        inputs: &[SensorInputs<'_>],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Reading>, SensorError> {
        inputs.iter().map(|i| self.convert(i, rng)).collect()
    }
}

impl Conversion for PtSensor {
    fn prepare(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SensorError> {
        self.calibrate(inputs, rng).map(|_| ())
    }

    fn convert(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<Reading, SensorError> {
        self.read(inputs, rng)
    }

    /// Overridden to reuse one [`Scratch`] across the batch (bit-identical
    /// to the default sequential composition — same RNG draws and float
    /// operations — but allocation-free per die after warm-up).
    fn convert_batch(
        &self,
        inputs: &[SensorInputs<'_>],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Reading>, SensorError> {
        self.read_batch(inputs, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthEvent;
    use crate::sensor::SensorSpec;
    use ptsim_device::process::Technology;
    use ptsim_device::units::Celsius;
    use ptsim_faults::{Fault, FaultPlan};
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    #[test]
    fn parity_scrub_stage_recovers_a_corrupted_register() {
        // Parity-scrub recovery, isolated from the R1 campaign: corrupt a
        // calibration register, watch the conversion refuse to run, scrub,
        // and verify the pipeline is whole again.
        let die = DieSample::nominal();
        let mut s = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(31);
        s.calibrate(&boot, &mut rng).unwrap();
        s.inject_faults(FaultPlan::single(Fault::CalibRegisterSeu {
            register: 2,
            bit: 9,
        }));
        let read = SensorInputs::new(&die, DieSite::CENTER, Celsius(60.0));
        let err = run_conversion(&s, &read, &mut rng).unwrap_err();
        assert!(matches!(err, SensorError::CalibrationCorrupted { .. }));
        let outcome = s
            .parity_scrub(&boot, &mut rng)
            .unwrap()
            .expect("scrub must trigger on bad parity");
        assert!(outcome
            .health
            .any(|e| matches!(e, HealthEvent::ParityScrubbed { .. })));
        let r = run_conversion(&s, &read, &mut rng).unwrap();
        assert!((r.temperature.0 - 60.0).abs() < 1.5);
    }

    #[test]
    fn pipeline_composition_equals_monolithic_read() {
        // run_conversion IS PtSensor::read — two sensors, same seed, same
        // bits.
        let die = DieSample::nominal();
        let mut s = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng_a = Pcg64::seed_from_u64(77);
        let mut rng_b = Pcg64::seed_from_u64(77);
        s.calibrate(&boot, &mut rng_a).unwrap();
        // Advance rng_b identically by replaying the calibration draws.
        {
            let mut clone = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
            clone.calibrate(&boot, &mut rng_b).unwrap();
        }
        let probe = SensorInputs::new(&die, DieSite::CENTER, Celsius(85.0));
        let a = s.read(&probe, &mut rng_a).unwrap();
        let b = run_conversion(&s, &probe, &mut rng_b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn conversion_trait_drives_the_full_sensor() {
        let die = DieSample::nominal();
        let mut s = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        let mut rng = Pcg64::seed_from_u64(78);
        let dynrng: &mut dyn RngCore = &mut rng;
        let sensor: &mut dyn Conversion = &mut s;
        sensor.prepare(&boot, dynrng).unwrap();
        let temps = [Celsius(0.0), Celsius(50.0), Celsius(100.0)];
        let inputs: Vec<SensorInputs<'_>> = temps
            .iter()
            .map(|&t| SensorInputs::new(&die, DieSite::CENTER, t))
            .collect();
        let readings = sensor.convert_batch(&inputs, dynrng).unwrap();
        assert_eq!(readings.len(), 3);
        for (r, t) in readings.iter().zip(&temps) {
            assert!((r.temperature.0 - t.0).abs() < 1.5);
        }
    }
}
