//! The batched multi-die conversion API.
//!
//! A [`BatchPlan`] captures everything that is identical across dies of a
//! population — the sensor prototype (with its design-time plausibility
//! bands and optional characterized model already built), the boot
//! conditions, the site, and the temperature schedule — so per-conversion
//! setup is amortized: cloning the prototype per die skips the 160-corner
//! band envelope scan and the polynomial characterization that
//! [`PtSensor::new`] / [`PtSensor::use_characterized_model`] pay.
//!
//! Cloning is bit-identical to fresh construction: band derivation and
//! characterization consume no RNG, and [`PtSensor::calibrate`] fully
//! overwrites the stored state, so a cloned prototype behaves exactly like
//! a sensor built from scratch on the same die.

use crate::bank::RoClass;
use crate::error::SensorError;
use crate::golden::CharacterizationSpace;
use crate::metrics::PipelineMetrics;
use crate::pipeline::lanes::{self, LANES};
use crate::pipeline::output::{CalibrationOutcome, Reading};
use crate::pipeline::Scratch;
use crate::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_mc::driver::{
    die_field_seed, die_rng, run_parallel_chunked_metered, run_parallel_chunked_with,
    run_parallel_with, McConfig,
};
use ptsim_mc::model::{DieSampler, VariationModel};
use ptsim_mc::spatial::FieldMask;
use ptsim_rng::{Pcg64, Rng};

/// Everything one die contributes to a batched campaign: its boot-time
/// calibration outcome and one [`Reading`] per scheduled temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct DieConversion {
    /// Outcome of the boot-time self-calibration.
    pub calibration: CalibrationOutcome,
    /// One reading per scheduled temperature, in schedule order.
    pub readings: Vec<Reading>,
}

/// A reusable multi-die conversion schedule over one sensor design.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    prototype: PtSensor,
    boot_temp: Celsius,
    site: DieSite,
    temps: Vec<Celsius>,
}

impl BatchPlan {
    /// Builds the plan's sensor prototype once (bands, counters, bank).
    ///
    /// # Errors
    ///
    /// Propagates sensor construction errors.
    pub fn new(tech: Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        let boot_temp = spec.calib_temp;
        Ok(BatchPlan {
            prototype: PtSensor::new(tech, spec)?,
            boot_temp,
            site: DieSite::CENTER,
            temps: Vec::new(),
        })
    }

    /// Switches the prototype (and so every die of the batch) to the
    /// design-time characterized polynomial model, paying the
    /// characterization cost once for the whole population.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn with_characterized_model(
        mut self,
        space: CharacterizationSpace,
    ) -> Result<Self, SensorError> {
        self.prototype.use_characterized_model(space)?;
        Ok(self)
    }

    /// Places the sensor bank at `site` on every die.
    #[must_use]
    pub fn at_site(mut self, site: DieSite) -> Self {
        self.site = site;
        self
    }

    /// True die temperature during the boot-time self-calibration
    /// (defaults to the spec's assumed calibration temperature).
    #[must_use]
    pub fn boot_temp(mut self, temp: Celsius) -> Self {
        self.boot_temp = temp;
        self
    }

    /// Schedules one reading per temperature (°C), in order, on every die.
    #[must_use]
    pub fn read_at(mut self, temps: &[f64]) -> Self {
        self.temps = temps.iter().map(|&t| Celsius(t)).collect();
        self
    }

    /// A fresh per-die sensor: a clone of the prebuilt prototype,
    /// bit-identical to (and much cheaper than) constructing from scratch.
    #[must_use]
    pub fn sensor(&self) -> PtSensor {
        self.prototype.clone()
    }

    /// The scheduled read temperatures.
    #[must_use]
    pub fn temperatures(&self) -> &[Celsius] {
        &self.temps
    }

    /// Runs the plan on one die with a caller-provided sensor (obtained
    /// from [`BatchPlan::sensor`], possibly with faults injected):
    /// calibrates at the boot conditions, then reads every scheduled
    /// temperature in order.
    ///
    /// # Errors
    ///
    /// Propagates calibration/read failures.
    pub fn convert_with<R: Rng + ?Sized>(
        &self,
        sensor: &mut PtSensor,
        die: &DieSample,
        rng: &mut R,
    ) -> Result<DieConversion, SensorError> {
        self.convert_with_scratch(sensor, die, rng, &mut Scratch::new())
    }

    /// [`BatchPlan::convert_with`] with a caller-owned (reusable)
    /// [`Scratch`] — the allocation-free form [`BatchPlan::run_population`]
    /// drives with one workspace per worker thread. Bit-identical to
    /// [`BatchPlan::convert_with`].
    ///
    /// # Errors
    ///
    /// Propagates calibration/read failures.
    pub fn convert_with_scratch<R: Rng + ?Sized>(
        &self,
        sensor: &mut PtSensor,
        die: &DieSample,
        rng: &mut R,
        scratch: &mut Scratch,
    ) -> Result<DieConversion, SensorError> {
        let boot = SensorInputs::new(die, self.site, self.boot_temp);
        let calibration = crate::pipeline::run_calibration_with(sensor, &boot, rng, scratch)?;
        let mut readings = Vec::with_capacity(self.temps.len());
        for &t in &self.temps {
            let inputs = SensorInputs::new(die, self.site, t);
            readings.push(crate::pipeline::run_conversion_with(
                sensor, &inputs, rng, scratch,
            )?);
        }
        Ok(DieConversion {
            calibration,
            readings,
        })
    }

    /// Runs the plan on one die with a fresh prototype clone, returning the
    /// calibrated sensor alongside the conversions (for campaigns that keep
    /// probing the same die afterwards, e.g. fault injection).
    ///
    /// # Errors
    ///
    /// Propagates calibration/read failures.
    pub fn convert_die<R: Rng + ?Sized>(
        &self,
        die: &DieSample,
        rng: &mut R,
    ) -> Result<(PtSensor, DieConversion), SensorError> {
        let mut sensor = self.sensor();
        let conv = self.convert_with(&mut sensor, die, rng)?;
        Ok((sensor, conv))
    }

    /// Runs the plan over a whole Monte-Carlo population under the batch
    /// sampling discipline, which splits each die's randomness over two
    /// documented streams: die `i`'s die-to-die parameters and
    /// measurement-gating draws come from `die_rng(cfg.base_seed, i)` (in
    /// the classic order), while its within-die field cells are
    /// counter-based — each cell is a pure function of
    /// `die_field_seed(cfg.base_seed, i)` and the cell index (see
    /// [`DieSampler::sample_die_sparse`]) — so only the handful of cells
    /// under this plan's ring sites are ever realized. The result is
    /// deterministic in `(base_seed, i)` and independent of thread count,
    /// chunking, and schedule. The prototype is cloned — and one pipeline
    /// [`Scratch`] and one die sampler (precomputed within-die stencils)
    /// created — once per worker thread, not per die, so the steady-state
    /// conversion loop is allocation-free.
    ///
    /// Analytic-model plans run through the struct-of-arrays **lane
    /// kernel** ([`crate::pipeline::lanes`]): dies are dispatched in
    /// [`LANES`]-wide chunks whose RNG-free Newton solves run
    /// lane-parallel, bit-identical to — and substantially faster than —
    /// the retained scalar oracle ([`BatchPlan::run_population_scalar`]).
    /// Characterized-model plans take the scalar path unconditionally.
    #[must_use]
    pub fn run_population(
        &self,
        cfg: &McConfig,
        model: &VariationModel,
    ) -> Vec<Result<DieConversion, SensorError>> {
        if self.prototype.characterized_model().is_some() {
            return self.run_population_scalar(cfg, model);
        }
        run_parallel_chunked_with(
            cfg,
            LANES,
            || self.lane_worker(model, Scratch::new()),
            |ctx, start, len, out| self.lane_chunk(ctx, cfg.base_seed, start, len, out),
        )
    }

    /// [`BatchPlan::run_population`] with per-worker
    /// [`PipelineMetrics`] attached and merged
    /// after the run. The readings are bit-identical to the unmetered run
    /// — observability reads, never perturbs — and the merged deterministic
    /// subset (counters, energy histogram) is independent of the thread
    /// count, because chunking is cursor-free and deterministic.
    #[must_use]
    pub fn run_population_with_metrics(
        &self,
        cfg: &McConfig,
        model: &VariationModel,
    ) -> (Vec<Result<DieConversion, SensorError>>, PipelineMetrics) {
        if self.prototype.characterized_model().is_some() {
            let base_seed = cfg.base_seed;
            let (results, reports) = ptsim_mc::driver::run_parallel_metered(
                cfg,
                || self.scalar_worker(model, Scratch::with_metrics()),
                |(sensor, scratch, sampler, vtn_mask, vtp_mask), i, rng| {
                    let die = sampler.sample_die_sparse(
                        rng,
                        die_field_seed(base_seed, i),
                        i,
                        vtn_mask,
                        vtp_mask,
                    );
                    sensor.reset_for_reuse();
                    self.convert_with_scratch(sensor, &die, rng, scratch)
                },
            );
            let mut total = PipelineMetrics::new();
            for mut r in reports {
                if let Some(m) = r.ctx.1.take_metrics() {
                    total.merge(&m);
                }
            }
            return (results, total);
        }
        let (results, reports) = run_parallel_chunked_metered(
            cfg,
            LANES,
            || self.lane_worker(model, Scratch::with_metrics()),
            |ctx, start, len, out| self.lane_chunk(ctx, cfg.base_seed, start, len, out),
        );
        let mut total = PipelineMetrics::new();
        for mut r in reports {
            if let Some(m) = r.ctx.scratch.take_metrics() {
                total.merge(&m);
            }
        }
        (results, total)
    }

    /// The retained scalar population path — the bit-exact oracle the lane
    /// kernel is gated against (and the unconditional path for
    /// characterized-model plans). One die at a time through the staged
    /// pipeline, one worker context per thread, drawing each die under the
    /// same two-stream sampling discipline as the lane path (see
    /// [`BatchPlan::run_population`]) so the two are comparable die for
    /// die, bit for bit.
    #[must_use]
    pub fn run_population_scalar(
        &self,
        cfg: &McConfig,
        model: &VariationModel,
    ) -> Vec<Result<DieConversion, SensorError>> {
        let base_seed = cfg.base_seed;
        run_parallel_with(
            cfg,
            || self.scalar_worker(model, Scratch::new()),
            |(sensor, scratch, sampler, vtn_mask, vtp_mask), i, rng| {
                let die = sampler.sample_die_sparse(
                    rng,
                    die_field_seed(base_seed, i),
                    i,
                    vtn_mask,
                    vtp_mask,
                );
                // Reuse the worker's sensor, resetting *all* per-die state
                // (faults and the stored calibration, not just faults).
                sensor.reset_for_reuse();
                self.convert_with_scratch(sensor, &die, rng, scratch)
            },
        )
    }

    /// Per-worker context of the scalar population path: sensor clone,
    /// scratch, sampler, and the sparse-field masks of this plan's sites.
    fn scalar_worker(
        &self,
        model: &VariationModel,
        scratch: Scratch,
    ) -> (PtSensor, Scratch, DieSampler, FieldMask, FieldMask) {
        let sensor = self.sensor();
        let sampler = model.sampler();
        let (vtn_mask, vtp_mask) = self.site_masks(&sensor, &sampler);
        (sensor, scratch, sampler, vtn_mask, vtp_mask)
    }

    /// Sparse-field masks covering the only points the batch pipeline ever
    /// probes a die at: this plan's three ring sites.
    fn site_masks(&self, sensor: &PtSensor, sampler: &DieSampler) -> (FieldMask, FieldMask) {
        let points = [RoClass::PsroN, RoClass::PsroP, RoClass::Tsro].map(|class| {
            let site = sensor.bank().site_of(class, self.site);
            (site.x, site.y)
        });
        sampler.field_masks(&points)
    }

    /// Per-worker context of the lane population path: sensor clone,
    /// scratch, sampler (with the sparse-field masks of this plan's bank
    /// sites), and reusable chunk buffers.
    fn lane_worker(&self, model: &VariationModel, scratch: Scratch) -> LaneWorker {
        let sensor = self.sensor();
        let sampler = model.sampler();
        // The batch pipeline only ever probes a die at its three ring
        // sites, so the within-die fields are realized sparsely: just the
        // fine-grid cells under those bilinear reads ever draw a value
        // (counter-based, so the realized cells are mask-invariant).
        let (vtn_mask, vtp_mask) = self.site_masks(&sensor, &sampler);
        LaneWorker {
            sensor,
            scratch,
            sampler,
            vtn_mask,
            vtp_mask,
            dies: Vec::with_capacity(LANES),
            rngs: Vec::with_capacity(LANES),
        }
    }

    /// Converts dies `start .. start + len` as one lane chunk: per-die
    /// sampling under the two-stream discipline (d2d draws on each die's
    /// own main stream, counter-based sparse fields), then the phased
    /// lane-parallel conversion.
    fn lane_chunk(
        &self,
        ctx: &mut LaneWorker,
        base_seed: u64,
        start: u64,
        len: usize,
        out: &mut Vec<Result<DieConversion, SensorError>>,
    ) {
        let LaneWorker {
            sensor,
            scratch,
            sampler,
            vtn_mask,
            vtp_mask,
            dies,
            rngs,
        } = ctx;
        sensor.reset_for_reuse();
        rngs.clear();
        dies.clear();
        for k in 0..len as u64 {
            let i = start + k;
            let mut rng = die_rng(base_seed, i);
            dies.push(sampler.sample_die_sparse(
                &mut rng,
                die_field_seed(base_seed, i),
                i,
                vtn_mask,
                vtp_mask,
            ));
            rngs.push(rng);
        }
        lanes::convert_population_chunk(
            sensor,
            scratch,
            self.site,
            self.boot_temp,
            &self.temps,
            dies,
            rngs,
            out,
        );
    }
}

/// Per-worker-thread state of the lane population path (one clone per
/// thread, reused across every chunk the thread drains).
struct LaneWorker {
    sensor: PtSensor,
    scratch: Scratch,
    sampler: DieSampler,
    vtn_mask: FieldMask,
    vtp_mask: FieldMask,
    dies: Vec<DieSample>,
    rngs: Vec<Pcg64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_mc::driver::{die_field_seed, die_rng};

    fn plan() -> BatchPlan {
        BatchPlan::new(Technology::n65(), SensorSpec::default_65nm())
            .unwrap()
            .read_at(&[0.0, 50.0, 100.0])
    }

    #[test]
    fn batch_matches_bespoke_per_die_loop() {
        // The batched path must be bit-identical to a hand-written loop
        // following the documented two-stream sampling discipline: die-to-
        // die parameters and gating draws from `die_rng(base_seed, i)`,
        // within-die fields counter-based from `die_field_seed(base_seed, i)`
        // with masks over the plan's ring sites.
        let p = plan();
        let cfg = McConfig::new(6, 0xbeef);
        let model = VariationModel::new(&Technology::n65());
        let batched = p.run_population(&cfg, &model);

        let mut sampler = model.sampler();
        let proto = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let points = [RoClass::PsroN, RoClass::PsroP, RoClass::Tsro].map(|class| {
            let site = proto.bank().site_of(class, DieSite::CENTER);
            (site.x, site.y)
        });
        let (vtn_mask, vtp_mask) = sampler.field_masks(&points);
        let mut bespoke = Vec::new();
        for i in 0..6u64 {
            let mut rng = die_rng(0xbeef, i);
            let die = sampler.sample_die_sparse(
                &mut rng,
                die_field_seed(0xbeef, i),
                i,
                &vtn_mask,
                &vtp_mask,
            );
            let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
            let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
            let calibration = sensor.calibrate(&boot, &mut rng).unwrap();
            let readings = [0.0, 50.0, 100.0]
                .iter()
                .map(|&t| {
                    sensor
                        .read(
                            &SensorInputs::new(&die, DieSite::CENTER, Celsius(t)),
                            &mut rng,
                        )
                        .unwrap()
                })
                .collect::<Vec<_>>();
            bespoke.push(DieConversion {
                calibration,
                readings,
            });
        }
        for (b, e) in batched.iter().zip(&bespoke) {
            assert_eq!(b.as_ref().unwrap(), e);
        }
    }

    #[test]
    fn lane_population_is_bit_identical_to_scalar_oracle() {
        // 13 dies: one full lane chunk plus a 5-wide masked tail.
        let p = plan();
        let model = VariationModel::new(&Technology::n65());
        let cfg = McConfig::new(13, 0x50a1);
        let lane = p.run_population(&cfg, &model);
        let scalar = p.run_population_scalar(&cfg, &model);
        assert_eq!(lane.len(), scalar.len());
        for (a, b) in lane.iter().zip(&scalar) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn prototype_clone_is_bit_identical_to_fresh_construction() {
        let p = plan();
        let die = DieSample::nominal();
        let mut rng_a = die_rng(1, 0);
        let mut rng_b = die_rng(1, 0);
        let (_, via_plan) = p.convert_die(&die, &mut rng_a).unwrap();
        let mut fresh = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let via_fresh = p.convert_with(&mut fresh, &die, &mut rng_b).unwrap();
        assert_eq!(via_plan, via_fresh);
    }

    #[test]
    fn read_batch_amortizes_over_the_schedule() {
        let die = DieSample::nominal();
        let p = plan().boot_temp(Celsius(25.0));
        let mut rng = die_rng(2, 0);
        let (_, conv) = p.convert_die(&die, &mut rng).unwrap();
        assert_eq!(conv.readings.len(), 3);
        for (r, t) in conv.readings.iter().zip([0.0, 50.0, 100.0]) {
            assert!((r.temperature.0 - t).abs() < 1.5);
        }
        assert!(conv.calibration.health.is_nominal());
    }
}
