//! The batched multi-die conversion API.
//!
//! A [`BatchPlan`] captures everything that is identical across dies of a
//! population — the sensor prototype (with its design-time plausibility
//! bands and optional characterized model already built), the boot
//! conditions, the site, and the temperature schedule — so per-conversion
//! setup is amortized: cloning the prototype per die skips the 160-corner
//! band envelope scan and the polynomial characterization that
//! [`PtSensor::new`] / [`PtSensor::use_characterized_model`] pay.
//!
//! Cloning is bit-identical to fresh construction: band derivation and
//! characterization consume no RNG, and [`PtSensor::calibrate`] fully
//! overwrites the stored state, so a cloned prototype behaves exactly like
//! a sensor built from scratch on the same die.

use crate::error::SensorError;
use crate::golden::CharacterizationSpace;
use crate::pipeline::output::{CalibrationOutcome, Reading};
use crate::pipeline::Scratch;
use crate::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_mc::driver::{run_parallel_with, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_rng::Rng;

/// Everything one die contributes to a batched campaign: its boot-time
/// calibration outcome and one [`Reading`] per scheduled temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct DieConversion {
    /// Outcome of the boot-time self-calibration.
    pub calibration: CalibrationOutcome,
    /// One reading per scheduled temperature, in schedule order.
    pub readings: Vec<Reading>,
}

/// A reusable multi-die conversion schedule over one sensor design.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    prototype: PtSensor,
    boot_temp: Celsius,
    site: DieSite,
    temps: Vec<Celsius>,
}

impl BatchPlan {
    /// Builds the plan's sensor prototype once (bands, counters, bank).
    ///
    /// # Errors
    ///
    /// Propagates sensor construction errors.
    pub fn new(tech: Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        let boot_temp = spec.calib_temp;
        Ok(BatchPlan {
            prototype: PtSensor::new(tech, spec)?,
            boot_temp,
            site: DieSite::CENTER,
            temps: Vec::new(),
        })
    }

    /// Switches the prototype (and so every die of the batch) to the
    /// design-time characterized polynomial model, paying the
    /// characterization cost once for the whole population.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn with_characterized_model(
        mut self,
        space: CharacterizationSpace,
    ) -> Result<Self, SensorError> {
        self.prototype.use_characterized_model(space)?;
        Ok(self)
    }

    /// Places the sensor bank at `site` on every die.
    #[must_use]
    pub fn at_site(mut self, site: DieSite) -> Self {
        self.site = site;
        self
    }

    /// True die temperature during the boot-time self-calibration
    /// (defaults to the spec's assumed calibration temperature).
    #[must_use]
    pub fn boot_temp(mut self, temp: Celsius) -> Self {
        self.boot_temp = temp;
        self
    }

    /// Schedules one reading per temperature (°C), in order, on every die.
    #[must_use]
    pub fn read_at(mut self, temps: &[f64]) -> Self {
        self.temps = temps.iter().map(|&t| Celsius(t)).collect();
        self
    }

    /// A fresh per-die sensor: a clone of the prebuilt prototype,
    /// bit-identical to (and much cheaper than) constructing from scratch.
    #[must_use]
    pub fn sensor(&self) -> PtSensor {
        self.prototype.clone()
    }

    /// The scheduled read temperatures.
    #[must_use]
    pub fn temperatures(&self) -> &[Celsius] {
        &self.temps
    }

    /// Runs the plan on one die with a caller-provided sensor (obtained
    /// from [`BatchPlan::sensor`], possibly with faults injected):
    /// calibrates at the boot conditions, then reads every scheduled
    /// temperature in order.
    ///
    /// # Errors
    ///
    /// Propagates calibration/read failures.
    pub fn convert_with<R: Rng + ?Sized>(
        &self,
        sensor: &mut PtSensor,
        die: &DieSample,
        rng: &mut R,
    ) -> Result<DieConversion, SensorError> {
        self.convert_with_scratch(sensor, die, rng, &mut Scratch::new())
    }

    /// [`BatchPlan::convert_with`] with a caller-owned (reusable)
    /// [`Scratch`] — the allocation-free form [`BatchPlan::run_population`]
    /// drives with one workspace per worker thread. Bit-identical to
    /// [`BatchPlan::convert_with`].
    ///
    /// # Errors
    ///
    /// Propagates calibration/read failures.
    pub fn convert_with_scratch<R: Rng + ?Sized>(
        &self,
        sensor: &mut PtSensor,
        die: &DieSample,
        rng: &mut R,
        scratch: &mut Scratch,
    ) -> Result<DieConversion, SensorError> {
        let boot = SensorInputs::new(die, self.site, self.boot_temp);
        let calibration = crate::pipeline::run_calibration_with(sensor, &boot, rng, scratch)?;
        let mut readings = Vec::with_capacity(self.temps.len());
        for &t in &self.temps {
            let inputs = SensorInputs::new(die, self.site, t);
            readings.push(crate::pipeline::run_conversion_with(
                sensor, &inputs, rng, scratch,
            )?);
        }
        Ok(DieConversion {
            calibration,
            readings,
        })
    }

    /// Runs the plan on one die with a fresh prototype clone, returning the
    /// calibrated sensor alongside the conversions (for campaigns that keep
    /// probing the same die afterwards, e.g. fault injection).
    ///
    /// # Errors
    ///
    /// Propagates calibration/read failures.
    pub fn convert_die<R: Rng + ?Sized>(
        &self,
        die: &DieSample,
        rng: &mut R,
    ) -> Result<(PtSensor, DieConversion), SensorError> {
        let mut sensor = self.sensor();
        let conv = self.convert_with(&mut sensor, die, rng)?;
        Ok((sensor, conv))
    }

    /// Runs the plan over a whole Monte-Carlo population: die `i` is drawn
    /// from `model` with `die_rng(cfg.base_seed, i)` and converted with the
    /// same stream, exactly like the bespoke per-die loops this API
    /// replaces. The prototype is cloned — and one pipeline [`Scratch`] and
    /// one die sampler (precomputed within-die stencils) created — once per
    /// worker thread, not per die, so the steady-state conversion loop is
    /// allocation-free.
    #[must_use]
    pub fn run_population(
        &self,
        cfg: &McConfig,
        model: &VariationModel,
    ) -> Vec<Result<DieConversion, SensorError>> {
        run_parallel_with(
            cfg,
            || (self.sensor(), Scratch::new(), model.sampler()),
            |(sensor, scratch, sampler), i, rng| {
                let die = sampler.sample_die_with_id(rng, i);
                // Re-clone per die only what calibration overwrites anyway:
                // reuse the worker's sensor, clearing stale state.
                sensor.clear_faults();
                self.convert_with_scratch(sensor, &die, rng, scratch)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_mc::driver::die_rng;

    fn plan() -> BatchPlan {
        BatchPlan::new(Technology::n65(), SensorSpec::default_65nm())
            .unwrap()
            .read_at(&[0.0, 50.0, 100.0])
    }

    #[test]
    fn batch_matches_bespoke_per_die_loop() {
        // The batched path must be bit-identical to the hand-written loop
        // it replaces.
        let p = plan();
        let cfg = McConfig::new(6, 0xbeef);
        let model = VariationModel::new(&Technology::n65());
        let batched = p.run_population(&cfg, &model);

        let mut bespoke = Vec::new();
        for i in 0..6u64 {
            let mut rng = die_rng(0xbeef, i);
            let die = model.sample_die_with_id(&mut rng, i);
            let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
            let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
            let calibration = sensor.calibrate(&boot, &mut rng).unwrap();
            let readings = [0.0, 50.0, 100.0]
                .iter()
                .map(|&t| {
                    sensor
                        .read(
                            &SensorInputs::new(&die, DieSite::CENTER, Celsius(t)),
                            &mut rng,
                        )
                        .unwrap()
                })
                .collect::<Vec<_>>();
            bespoke.push(DieConversion {
                calibration,
                readings,
            });
        }
        for (b, e) in batched.iter().zip(&bespoke) {
            assert_eq!(b.as_ref().unwrap(), e);
        }
    }

    #[test]
    fn prototype_clone_is_bit_identical_to_fresh_construction() {
        let p = plan();
        let die = DieSample::nominal();
        let mut rng_a = die_rng(1, 0);
        let mut rng_b = die_rng(1, 0);
        let (_, via_plan) = p.convert_die(&die, &mut rng_a).unwrap();
        let mut fresh = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let via_fresh = p.convert_with(&mut fresh, &die, &mut rng_b).unwrap();
        assert_eq!(via_plan, via_fresh);
    }

    #[test]
    fn read_batch_amortizes_over_the_schedule() {
        let die = DieSample::nominal();
        let p = plan().boot_temp(Celsius(25.0));
        let mut rng = die_rng(2, 0);
        let (_, conv) = p.convert_die(&die, &mut rng).unwrap();
        assert_eq!(conv.readings.len(), 3);
        for (r, t) in conv.readings.iter().zip([0.0, 50.0, 100.0]) {
            assert!((r.temperature.0 - t).abs() < 1.5);
        }
        assert!(conv.calibration.health.is_nominal());
    }
}
