//! # tsv-pt-sensor
//!
//! A full-system reproduction of **"On-chip self-calibrated
//! process-temperature sensor for TSV 3D integration"** (Chiang, Huang,
//! Chuang, Chen, Chiou, Chen, Chiu, Tong, Hwang — IEEE SOCC 2012) as a Rust
//! simulation library.
//!
//! The original is a TSMC 65 nm silicon test chip; this workspace rebuilds
//! every layer of the system behaviorally, from device physics up:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | Device physics | [`device`] | units, 65 nm technology, EKV-style MOSFET model, inverter delay/energy |
//! | Process variation | [`mc`] | corners, die-to-die + within-die Monte-Carlo engine, statistics |
//! | Circuit blocks | [`circuit`] | ring oscillators, gated counters, fixed-point datapath, energy ledger |
//! | 3D thermal | [`thermal`] | stacked-die RC-network simulator (steady-state + transient) |
//! | TSV | [`tsv`] | via parasitics, thermal vias, stress/keep-out-zone model, stack topology |
//! | **The sensor** | [`core`] | self-calibration, PSRO/TSRO decoupling, conversion energy, stack monitor |
//! | Baselines | [`baselines`] | uncalibrated/1-point RO thermometers, BJT sensor, 2013 sub-Vth PVT sensor |
//!
//! ## Quickstart
//!
//! ```
//! use tsv_pt_sensor::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A die drawn from the 65 nm process spread.
//! let tech = Technology::n65();
//! let model = VariationModel::new(&tech);
//! let mut rng = ptsim_rng::Pcg64::seed_from_u64(2012);
//! let die = model.sample_die(&mut rng);
//!
//! // Build + self-calibrate the sensor at the 25 °C boot reference.
//! let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm())?;
//! sensor.calibrate(&SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)), &mut rng)?;
//!
//! // The die heats up; one conversion reads temperature and threshold drift.
//! let reading = sensor.read(&SensorInputs::new(&die, DieSite::CENTER, Celsius(85.0)), &mut rng)?;
//! assert!((reading.temperature.0 - 85.0).abs() < 2.0);
//! println!("T = {:.2}, ΔVtn = {:.2} mV, energy = {:.1} pJ",
//!          reading.temperature, reading.d_vtn.millivolts(),
//!          reading.energy_total().picojoules());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the 3D-stack monitoring, process-binning and
//! TSV-keep-out scenarios, and `crates/bench` for the per-figure/per-table
//! reproduction harness documented in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use ptsim_baselines as baselines;
pub use ptsim_circuit as circuit;
pub use ptsim_core as core;
pub use ptsim_device as device;
pub use ptsim_faults as faults;
pub use ptsim_mc as mc;
pub use ptsim_rng as rng;
pub use ptsim_thermal as thermal;
pub use ptsim_tsv as tsv;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use ptsim_baselines::{
        BjtSensor, DvsDtmSensing, PtSensorThermometer, Pvt2013Sensor, RoCalibration, RoThermometer,
        TempReading, Thermometer,
    };
    pub use ptsim_circuit::{EnergyLedger, Fixed, GatedCounter, InverterRing, Prescaler, QFormat};
    pub use ptsim_core::{
        hottest_site, run_dtm_loop, BankSpec, BatchPlan, Calibration, Conversion, DieConversion,
        DtmConfig, DtmController, DtmOutcome, DtmSensing, DvfsTable, HardeningSpec, Health,
        HealthEvent, HealthStatus, NominalSensing, OperatingPoint, PtSensor, Reading, RoBank,
        RoClass, SensingMode, SensorError, SensorInputs, SensorSpec, StackMonitor, TierReading,
        VddMonitor, WorkloadTrace,
    };
    pub use ptsim_device::units::{
        Ampere, Celsius, Farad, Hertz, Joule, Kelvin, Micron, Ohm, Pascal, Seconds, Volt, Watt,
        WattPerKelvin,
    };
    pub use ptsim_device::{
        CmosEnv, DeviceEnv, Inverter, MosPolarity, Mosfet, ProcessCorner, Technology,
    };
    pub use ptsim_faults::{catalog, CatalogEntry, Channel, Fault, FaultPlan, ReplicaSel};
    pub use ptsim_mc::{
        die_rng, run_parallel, run_parallel_with, DieSample, DieSite, Histogram, McConfig,
        OnlineStats, VariationModel,
    };
    pub use ptsim_rng::{Pcg64, Rng, RngCore};
    pub use ptsim_thermal::{
        run_transient, solve_steady_state, step_transient, step_transient_with, PowerMap,
        SolveOptions, StackConfig, ThermalStack, TransientScratch,
    };
    pub use ptsim_tsv::{StackTopology, StressModel, TsvArray, TsvGeometry};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let _ = Technology::n65();
        let _ = Celsius(25.0);
        let _ = SensorSpec::default_65nm();
    }
}
