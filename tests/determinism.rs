//! Determinism contract of the Monte-Carlo driver: the same seed yields
//! bit-identical results from the sequential path (`threads = 1`) and the
//! std-thread parallel path, for any thread count.
//!
//! This is what makes every experiment in `ptsim-bench` bisectable: a run
//! is a pure function of `(base_seed, n_dies)`, never of scheduling.

use tsv_pt_sensor::prelude::*;

/// Full calibrate-plus-read pipeline for one die; returns raw f64 bits so
/// comparisons are exact, not epsilon-based.
fn die_fingerprint(model: &VariationModel, tech: &Technology, i: u64, rng: &mut Pcg64) -> [u64; 3] {
    let die = model.sample_die_with_id(rng, i);
    let mut sensor = PtSensor::new(tech.clone(), SensorSpec::default_65nm()).expect("builds");
    sensor
        .calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            rng,
        )
        .expect("calibrates");
    let r = sensor
        .read(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(85.0)),
            rng,
        )
        .expect("reads");
    let cal = sensor.calibration().expect("calibrated");
    [
        r.temperature.0.to_bits(),
        r.energy_total().0.to_bits(),
        cal.d_vtn().0.to_bits(),
    ]
}

fn run_with_threads(threads: usize) -> Vec<[u64; 3]> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut cfg = McConfig::new(48, 0xd1e5);
    cfg.threads = threads;
    run_parallel(&cfg, |i, rng| die_fingerprint(&model, &tech, i, rng))
}

#[test]
fn sequential_and_parallel_drivers_are_bit_identical() {
    let sequential = run_with_threads(1);
    for threads in [2, 4, 8] {
        let parallel = run_with_threads(threads);
        assert_eq!(
            sequential, parallel,
            "driver output depends on thread count ({threads} threads)"
        );
    }
}

#[test]
fn auto_thread_count_matches_sequential() {
    // threads = 0 (one worker per CPU) must also reproduce the sequential
    // stream — this is the configuration every experiment binary uses.
    assert_eq!(run_with_threads(1), run_with_threads(0));
}

#[test]
fn distinct_seeds_give_distinct_populations() {
    let a = run_parallel(&McConfig::new(16, 1), |i, rng| {
        VariationModel::new(&Technology::n65())
            .sample_die_with_id(rng, i)
            .d_vtn_at(DieSite::CENTER)
            .0
            .to_bits()
    });
    let b = run_parallel(&McConfig::new(16, 2), |i, rng| {
        VariationModel::new(&Technology::n65())
            .sample_die_with_id(rng, i)
            .d_vtn_at(DieSite::CENTER)
            .0
            .to_bits()
    });
    assert_ne!(a, b);
}

#[test]
fn rng_streams_are_stable_across_runs() {
    // Pin a few absolute values of the die-RNG streams: if the PCG64
    // implementation or the per-die seed derivation ever changes, every
    // golden number in `accuracy_gates.rs` silently shifts — fail loudly
    // here instead.
    let mut r0 = die_rng(0, 0);
    let mut r1 = die_rng(0, 1);
    let a = r0.next_u64();
    let b = r1.next_u64();
    assert_ne!(a, b);
    let mut r0_again = die_rng(0, 0);
    assert_eq!(a, r0_again.next_u64());
}
