//! Property-based tests over the whole stack's core invariants.

use ptsim_rng::forall;
use tsv_pt_sensor::prelude::*;

forall! {
    // ---- units ------------------------------------------------------------

    #[test]
    fn celsius_kelvin_round_trip(t in -200.0f64..500.0) {
        let back = Celsius(t).to_kelvin().to_celsius();
        assert!((back.0 - t).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_are_inverse(f in 1.0f64..1e12) {
        let p = Hertz(f).period();
        assert!((p.to_frequency().0 - f).abs() / f < 1e-12);
    }

    // ---- fixed point -------------------------------------------------------

    #[test]
    fn fixed_round_trip_error_bounded(v in -30000.0f64..30000.0) {
        let q = QFormat::Q16_16;
        let err = (Fixed::from_f64(v, q).to_f64() - v).abs();
        assert!(err <= q.resolution() / 2.0 + 1e-12);
    }

    #[test]
    fn fixed_add_commutes(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let q = QFormat::Q16_16;
        let x = Fixed::from_f64(a, q);
        let y = Fixed::from_f64(b, q);
        assert_eq!(x.add(y).unwrap(), y.add(x).unwrap());
    }

    #[test]
    fn fixed_mul_matches_float_within_lsbs(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let q = QFormat::Q16_16;
        let x = Fixed::from_f64(a, q);
        let y = Fixed::from_f64(b, q);
        let exact = x.to_f64() * y.to_f64();
        if exact.abs() < q.max_value() {
            let got = x.mul(y).unwrap().to_f64();
            assert!((got - exact).abs() <= 2.0 * q.resolution() * (1.0 + a.abs() + b.abs()));
        }
    }

    // ---- counters ----------------------------------------------------------

    #[test]
    fn counter_estimate_within_one_lsb(f in 1e5f64..1e8, phase in 0.0f64..1.0) {
        let c = GatedCounter::new(24, 32_000).unwrap(); // 1 ms @ 32 MHz
        let rc = Hertz(32e6);
        if !c.overflows(Hertz(f), rc) {
            let est = c.measure(Hertz(f), rc, phase);
            assert!((est.0 - f).abs() <= c.resolution(rc).0 + 1e-9);
        }
    }

    #[test]
    fn counter_monotonic_in_frequency(f in 1e6f64..5e7, df in 1e4f64..1e6) {
        let c = GatedCounter::new(24, 32_000).unwrap();
        let rc = Hertz(32e6);
        let a = c.count(Hertz(f), rc, 0.3);
        let b = c.count(Hertz(f + df), rc, 0.3);
        assert!(b >= a);
    }

    // ---- device physics ----------------------------------------------------

    #[test]
    fn drain_current_monotonic_in_vgs(v1 in 0.0f64..1.2, dv in 0.001f64..0.2) {
        let tech = Technology::n65();
        let m = Mosfet::new(MosPolarity::Nmos, Micron(1.0), Micron(0.06)).unwrap();
        let env = DeviceEnv::nominal();
        let i1 = m.drain_current(&tech, Volt(v1), Volt(1.0), &env).0;
        let i2 = m.drain_current(&tech, Volt(v1 + dv), Volt(1.0), &env).0;
        assert!(i2 >= i1);
    }

    #[test]
    fn ring_frequency_monotonic_in_vt(shift in 0.001f64..0.06) {
        let tech = Technology::n65();
        let inv = Inverter::balanced(Micron(0.5), 2.0, &tech).unwrap();
        let ring = InverterRing::new(31, inv, Farad(0.5e-15), Volt(1.0)).unwrap();
        let base = ring.frequency(&tech, &CmosEnv::nominal()).0;
        let slow_env = CmosEnv {
            d_vtn: Volt(shift),
            d_vtp: Volt(shift),
            ..CmosEnv::nominal()
        };
        assert!(ring.frequency(&tech, &slow_env).0 < base);
    }

    #[test]
    fn tsro_frequency_monotonic_in_temperature(t1 in -20.0f64..90.0, dt in 1.0f64..30.0) {
        let tech = Technology::n65();
        let bank = RoBank::new(&tech, BankSpec::default_65nm()).unwrap();
        let vdd = bank.spec().vdd_tsro;
        let f1 = bank.frequency(&tech, RoClass::Tsro, vdd, &CmosEnv::at(Celsius(t1))).0;
        let f2 = bank.frequency(&tech, RoClass::Tsro, vdd, &CmosEnv::at(Celsius(t1 + dt))).0;
        assert!(f2 > f1, "TSRO must speed up with temperature");
    }

    // ---- statistics ----------------------------------------------------------

    #[test]
    fn welford_merge_equals_sequential(xs in ptsim_rng::check::vec_in(-1e3f64..1e3, 2..200), split in 1usize..100) {
        let split = split.min(xs.len() - 1);
        let all: OnlineStats = xs.iter().copied().collect();
        let a: OnlineStats = xs[..split].iter().copied().collect();
        let mut b: OnlineStats = xs[split..].iter().copied().collect();
        b.merge(&a);
        assert_eq!(b.count(), all.count());
        assert!((b.mean() - all.mean()).abs() < 1e-6);
        assert!((b.variance() - all.variance()).abs() < 1e-3);
    }

    // ---- thermal -------------------------------------------------------------

    #[test]
    fn power_map_hotspot_conserves_total(cx in 0.1f64..0.9, cy in 0.1f64..0.9,
                                         r in 0.02f64..0.3, w in 0.1f64..5.0) {
        let mut m = PowerMap::zero(16, 16).unwrap();
        m.add_hotspot(cx, cy, r, Watt(w));
        assert!((m.total().0 - w).abs() < 1e-9);
    }

    #[test]
    fn steady_state_hotter_with_more_power(w in 0.1f64..3.0) {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        s.set_power(0, PowerMap::uniform(16, 16, Watt(w)).unwrap()).unwrap();
        solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        let t = s.mean_temperature(0).unwrap().0;
        assert!(t > 25.0);
        // Linear RC network: rise proportional to power.
        let rise_per_watt = (t - 25.0) / w;
        assert!(rise_per_watt > 0.5 && rise_per_watt < 50.0);
    }

    // ---- TSV -----------------------------------------------------------------

    #[test]
    fn stress_decays_with_distance(r1 in 5.0f64..50.0, dr in 1.0f64..50.0) {
        let sm = StressModel::default_65nm();
        let g = TsvGeometry::standard_10um();
        let s1 = sm.radial_stress(&g, Micron(r1), Celsius(25.0)).0;
        let s2 = sm.radial_stress(&g, Micron(r1 + dr), Celsius(25.0)).0;
        assert!(s2 <= s1);
    }

    #[test]
    fn koz_monotone_in_threshold(t1 in 0.001f64..0.05, t2 in 0.051f64..0.5) {
        let sm = StressModel::default_65nm();
        let g = TsvGeometry::standard_10um();
        let k1 = sm.keep_out_radius(&g, t1, Celsius(25.0)).0;
        let k2 = sm.keep_out_radius(&g, t2, Celsius(25.0)).0;
        assert!(k1 >= k2, "tighter threshold, larger KOZ");
    }
}

forall! {
    #![cases = 16]

    // Expensive end-to-end property: the calibrated sensor recovers any
    // injected D2D shift within the paper band.
    #[test]
    fn sensor_recovers_arbitrary_d2d_shift(
        dvtn in -0.035f64..0.035,
        dvtp in -0.035f64..0.035,
        mu_n in 0.92f64..1.08,
        mu_p in 0.92f64..1.08,
        seed in 0u64..1000,
    ) {
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(dvtn);
        die.d_vtp_d2d = Volt(dvtp);
        die.mu_n_d2d = mu_n;
        die.mu_p_d2d = mu_p;
        let mut sensor = PtSensor::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let mut rng = ptsim_rng::Pcg64::seed_from_u64(seed);
        sensor
            .calibrate(&SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)), &mut rng)
            .unwrap();
        let cal = sensor.calibration().unwrap();
        assert!((cal.d_vtn().0 - dvtn).abs() < 1.6e-3,
            "Vtn {:.2} mV vs injected {:.2} mV", cal.d_vtn().millivolts(), dvtn * 1e3);
        assert!((cal.d_vtp().0 - dvtp).abs() < 1.6e-3,
            "Vtp {:.2} mV vs injected {:.2} mV", cal.d_vtp().millivolts(), dvtp * 1e3);
    }
}
