//! Tier-1 robustness gates over the R2 fleet-service chaos campaign.
//!
//! Boots the real daemon over loopback TCP and asserts the service's
//! failure contract end to end: full baseline availability, every request
//! answered (served or typed rejection — nothing dropped silently), zero
//! silent corruption, supervised worker recovery within budget, typed
//! `shard_down` from a shard driven past its restart budget while the
//! rest of the fleet keeps serving, degraded dies serving flagged
//! temperature-only readings, and a malformed-frame storm answered with
//! typed `bad_request` without harming subsequent clean requests.

use ptsim_bench::experiments::r2_chaos::{
    run_campaign, ChaosConfig, ChaosReport, RECOVERY_BUDGET_MS,
};
use std::sync::OnceLock;

fn campaign() -> &'static ChaosReport {
    static CAMPAIGN: OnceLock<ChaosReport> = OnceLock::new();
    CAMPAIGN.get_or_init(|| run_campaign(&ChaosConfig::default()))
}

#[test]
fn all_chaos_gates_pass() {
    let fails = campaign().gate_failures();
    assert!(
        fails.is_empty(),
        "chaos gates violated:\n{}",
        fails.join("\n")
    );
}

#[test]
fn availability_and_accounting() {
    let c = campaign();
    assert!((c.baseline_availability() - 1.0).abs() < f64::EPSILON);
    assert_eq!(c.unaccounted(), 0, "requests vanished unanswered");
    assert_eq!(c.silent_corruptions, 0);
}

#[test]
fn supervised_recovery_is_within_budget() {
    let c = campaign();
    assert!(
        c.recovery_ms.is_finite() && c.recovery_ms <= RECOVERY_BUDGET_MS,
        "recovery took {} ms",
        c.recovery_ms
    );
    assert!(c.restarts() >= 1);
}

#[test]
fn dead_shard_is_typed_and_contained() {
    let c = campaign();
    assert!(
        c.dead_shard_observed,
        "kill phase never produced a dead shard"
    );
    assert!(
        c.survivors_served_during_outage >= 1,
        "healthy shards went quiet during the outage"
    );
    // The final health summary still answers (health never routes through
    // a shard queue) and records the death.
    assert!(c.health.shards.iter().any(|s| s.state == "dead"));
    assert!(c.health.shards.iter().any(|s| s.state == "up"));
}

#[test]
fn frame_storm_is_survived() {
    let c = campaign();
    let storm = c
        .phases
        .iter()
        .find(|p| p.name == "frame-storm")
        .expect("storm phase present");
    assert!(
        storm.rej_bad_request >= 1,
        "no typed bad_request during storm"
    );
    assert!(c.clean_read_after_storm);
}
