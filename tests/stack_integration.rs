//! Cross-crate integration: thermal × TSV × Monte-Carlo × sensor.

use tsv_pt_sensor::prelude::*;

fn build_monitor(seed: u64) -> StackMonitor {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(seed);
    let dies: Vec<DieSample> = (0..4)
        .map(|i| model.sample_die_with_id(&mut rng, i))
        .collect();
    StackMonitor::new(
        StackTopology::reference_four_tier(),
        dies,
        DieSite::new(0.4, 0.6),
        &tech,
        SensorSpec::default_65nm(),
    )
    .expect("monitor builds")
}

#[test]
fn heated_stack_read_within_band_on_every_tier() {
    let mut mon = build_monitor(11);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(12);
    mon.calibrate_all(&mut rng).unwrap();

    let mut thermal = mon.build_thermal().unwrap();
    let mut p = PowerMap::zero(16, 16).unwrap();
    p.add_hotspot(0.4, 0.6, 0.15, Watt(2.5));
    thermal.set_power(0, p).unwrap();
    thermal
        .set_power(1, PowerMap::uniform(16, 16, Watt(0.4)).unwrap())
        .unwrap();
    solve_steady_state(&mut thermal, &SolveOptions::default()).unwrap();

    let readings = mon.read_all(&thermal, &mut rng).unwrap();
    assert_eq!(readings.len(), 4);
    for r in &readings {
        assert!(
            r.temp_error().abs() < 1.5,
            "tier {} error {:.3} °C",
            r.tier,
            r.temp_error()
        );
    }
    // The heat source tier must be hottest, and the thermal gradient across
    // the stack must be visible to the sensors.
    assert!(readings[0].reading.temperature.0 > readings[3].reading.temperature.0 + 1.0);
}

#[test]
fn transient_tracking_follows_heatup() {
    let mut mon = build_monitor(21);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(22);
    mon.calibrate_all(&mut rng).unwrap();

    let mut thermal = mon.build_thermal().unwrap();
    thermal
        .set_power(0, PowerMap::uniform(16, 16, Watt(2.0)).unwrap())
        .unwrap();

    let mut last = 25.0;
    for _ in 0..5 {
        step_transient(&mut thermal, Seconds(0.003));
        let readings = mon.read_all(&thermal, &mut rng).unwrap();
        let t0 = readings[0].reading.temperature.0;
        assert!(t0 >= last - 0.2, "temperature must ramp monotonically");
        assert!(readings[0].temp_error().abs() < 1.5);
        last = t0;
    }
    assert!(
        last > 27.0,
        "stack should have heated visibly, got {last:.2}"
    );
}

#[test]
fn sensor_detects_tsv_stress_near_array() {
    // Put the sensor inside the TSV array where the superposed stress is
    // largest, and verify the drift-since-boot tracks the *change* of
    // stress with temperature (stress relaxes as the die heats).
    let tech = Technology::n65();
    let topo = StackTopology::reference_four_tier();
    let die = DieSample::nominal();
    let cfg = topo.thermal_config().clone();

    // Sensor centred in the array.
    let site = DieSite::new(0.5, 0.5);
    let (x, y) = (
        Micron(site.x * cfg.die_width.0),
        Micron(site.y * cfg.die_height.0),
    );
    let cold = topo.stress_vt_shift_at(1, x, y, Celsius(25.0));
    let hot = topo.stress_vt_shift_at(1, x, y, Celsius(100.0));
    assert!(cold.0 .0 > hot.0 .0, "stress must relax when hot");

    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm()).unwrap();
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(31);
    sensor
        .calibrate(
            &SensorInputs::new(&die, site, Celsius(25.0)).with_stress(cold.0, cold.1),
            &mut rng,
        )
        .unwrap();
    let r = sensor
        .read(
            &SensorInputs::new(&die, site, Celsius(100.0)).with_stress(hot.0, hot.1),
            &mut rng,
        )
        .unwrap();
    let cal = sensor.calibration().unwrap();
    let drift = (r.d_vtn - cal.d_vtn()).0;
    let true_drift = (hot.0 - cold.0).0;
    assert!(
        (drift - true_drift).abs() < 1.6e-3,
        "tracked stress drift {:.3} mV vs true {:.3} mV",
        drift * 1e3,
        true_drift * 1e3
    );
}

#[test]
fn thermal_tsv_coupling_reduces_gradient() {
    // The same power map produces a smaller tier0→tier3 gradient when TSVs
    // conduct heat — and the sensors should report exactly that.
    let run = |with_tsvs: bool, seed: u64| {
        let tech = Technology::n65();
        let topo = if with_tsvs {
            StackTopology::reference_four_tier()
        } else {
            StackTopology::new(StackConfig::four_tier_5mm())
        };
        let mut rng = ptsim_rng::Pcg64::seed_from_u64(seed);
        let dies = vec![DieSample::nominal(); 4];
        let mut mon = StackMonitor::new(
            topo,
            dies,
            DieSite::CENTER,
            &tech,
            SensorSpec::default_65nm(),
        )
        .unwrap();
        mon.calibrate_all(&mut rng).unwrap();
        let mut thermal = mon.build_thermal().unwrap();
        thermal
            .set_power(0, PowerMap::uniform(16, 16, Watt(3.0)).unwrap())
            .unwrap();
        solve_steady_state(&mut thermal, &SolveOptions::default()).unwrap();
        let readings = mon.read_all(&thermal, &mut rng).unwrap();
        for r in &readings {
            assert!(
                r.temp_error().abs() < 1.5,
                "tier {} err {}",
                r.tier,
                r.temp_error()
            );
        }
        // Ground-truth gradient: the signal-TSV count is small, so the
        // reduction is real but below the sensor's own accuracy band —
        // grade it on the truth, not the readings.
        readings[0].true_temp.0 - readings[3].true_temp.0
    };
    let bare = run(false, 41);
    let with = run(true, 42);
    assert!(
        with < bare,
        "true gradient must shrink with TSVs: {with:.4} vs {bare:.4}"
    );
}
