//! Golden accuracy gates: the paper-abstract numbers, asserted over a
//! fixed-seed 100-die Monte-Carlo population.
//!
//! These are the tier-1 regression fences for the reproduction:
//!
//! - post-calibration temperature error ≤ ±1.5 °C,
//! - Vtn extraction error ≤ ±1.6 mV, Vtp ≤ ±0.8 mV,
//! - conversion energy within 5 % of 367.5 pJ.
//!
//! The population (100 dies, seed `0x2012`) is deterministic — the in-tree
//! PCG64 and the std-thread MC driver are bit-reproducible regardless of
//! thread count — so any drift here is a real model/algorithm change, not
//! noise.

use tsv_pt_sensor::prelude::*;

const GATE_SEED: u64 = 0x2012;
const GATE_DIES: usize = 100;

struct DieOutcome {
    vtn_err_mv: f64,
    vtp_err_mv: f64,
    temp_errs_c: Vec<f64>,
    energy_pj: f64,
}

/// Calibrates and reads each die of the fixed gate population.
fn gate_population(temps: &[f64]) -> Vec<DieOutcome> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let spec = SensorSpec::default_65nm();
    run_parallel(&McConfig::new(GATE_DIES, GATE_SEED), |i, rng| {
        let die = model.sample_die_with_id(rng, i);
        let mut sensor = PtSensor::new(tech.clone(), spec).expect("sensor builds");
        sensor
            .calibrate(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                rng,
            )
            .expect("calibration converges");
        let cal = *sensor.calibration().expect("calibrated");
        let site_n = sensor.bank().site_of(RoClass::PsroN, DieSite::CENTER);
        let site_p = sensor.bank().site_of(RoClass::PsroP, DieSite::CENTER);
        let mut temp_errs_c = Vec::new();
        let mut energy_pj = f64::NAN;
        for &t in temps {
            let r = sensor
                .read(&SensorInputs::new(&die, DieSite::CENTER, Celsius(t)), rng)
                .expect("conversion succeeds");
            temp_errs_c.push(r.temperature.0 - t);
            if t == 25.0 {
                energy_pj = r.energy_total().picojoules();
            }
        }
        DieOutcome {
            vtn_err_mv: (cal.d_vtn() - die.d_vtn_at(site_n)).millivolts(),
            vtp_err_mv: (cal.d_vtp() - die.d_vtp_at(site_p)).millivolts(),
            temp_errs_c,
            energy_pj,
        }
    })
}

#[test]
fn paper_abstract_numbers_hold_over_gate_population() {
    let temps = [-20.0, 25.0, 70.0, 100.0];
    let pop = gate_population(&temps);
    assert_eq!(pop.len(), GATE_DIES);

    let worst_vtn = pop.iter().map(|d| d.vtn_err_mv.abs()).fold(0.0, f64::max);
    let worst_vtp = pop.iter().map(|d| d.vtp_err_mv.abs()).fold(0.0, f64::max);
    let worst_temp = pop
        .iter()
        .flat_map(|d| d.temp_errs_c.iter())
        .fold(0.0f64, |a, e| a.max(e.abs()));

    assert!(
        worst_vtn <= 1.6,
        "Vtn extraction worst error {worst_vtn:.3} mV exceeds paper ±1.6 mV"
    );
    assert!(
        worst_vtp <= 0.8,
        "Vtp extraction worst error {worst_vtp:.3} mV exceeds paper ±0.8 mV"
    );
    assert!(
        worst_temp <= 1.5,
        "temperature worst error {worst_temp:.3} °C exceeds paper ±1.5 °C"
    );

    // Energy: population mean within 5 % of the paper's 367.5 pJ/conversion.
    let mean_pj = pop.iter().map(|d| d.energy_pj).sum::<f64>() / pop.len() as f64;
    let rel = (mean_pj - 367.5).abs() / 367.5;
    assert!(
        rel <= 0.05,
        "mean conversion energy {mean_pj:.1} pJ deviates {:.1} % from 367.5 pJ",
        rel * 100.0
    );
}

#[test]
fn gate_population_is_reproducible() {
    // Same seed ⇒ bit-identical gate metrics (guards the gate itself
    // against nondeterminism creeping into the driver or the RNG).
    let a = gate_population(&[25.0]);
    let b = gate_population(&[25.0]);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.vtn_err_mv.to_bits(), y.vtn_err_mv.to_bits());
        assert_eq!(x.vtp_err_mv.to_bits(), y.vtp_err_mv.to_bits());
        assert_eq!(x.energy_pj.to_bits(), y.energy_pj.to_bits());
    }
}
