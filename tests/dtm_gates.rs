//! Tier-1 gates over the R3 closed-loop DVFS/thermal-throttling campaign.
//!
//! Runs the fixed-seed campaign (a reduced 8-stack slice of the R3
//! population; the full 25-stack run is `cargo run --release -p
//! ptsim-bench --bin dtm_campaign`) and asserts the closed loop's
//! contract end to end: containment of the true peak within the
//! documented overshoot budget, real throttling engagement in every
//! stack, decision-instant sensing error inside each arm's band, the
//! DVS arm's conversion-energy savings over always-nominal sensing, and
//! bit-identical results regardless of worker thread count.

use ptsim_bench::experiments::r3_dtm::{
    run_campaign, R3Config, R3Report, MIN_DVS_READ_FRACTION, MIN_ENERGY_SAVINGS,
    OVERSHOOT_BUDGET_C, T_LIMIT_C, T_RELEASE_C,
};
use std::sync::OnceLock;

fn gate_config(threads: usize) -> R3Config {
    R3Config {
        n_stacks: 8,
        steps: 150,
        threads,
    }
}

fn campaign() -> &'static R3Report {
    static CAMPAIGN: OnceLock<R3Report> = OnceLock::new();
    CAMPAIGN.get_or_init(|| run_campaign(&gate_config(4)))
}

#[test]
fn all_dtm_gates_pass() {
    let fails = campaign().gate_failures();
    assert!(
        fails.is_empty(),
        "DTM gates violated:\n{}",
        fails.join("\n")
    );
}

#[test]
fn containment_and_engagement() {
    let report = campaign();
    assert!(!report.runs.is_empty());
    for arm in [report.nominal(), report.dvs()] {
        assert!(arm.worst_overshoot <= OVERSHOOT_BUDGET_C);
        // The band is actually exercised: every stack throttles and the
        // deepest level reached sits below the DVS handover point.
        assert!(arm.mean_duty > 0.0 && arm.mean_duty < 1.0);
        assert!(arm.min_level <= 3, "ladder never reached 0.5 V or below");
    }
    for r in &report.runs {
        assert!(
            r.nominal.actuations >= 1,
            "stack {} never actuated",
            r.stack
        );
        assert!(r.dvs.actuations >= 1, "stack {} never actuated", r.stack);
    }
    const { assert!(T_RELEASE_C < T_LIMIT_C) };
}

#[test]
fn dvs_arm_saves_energy_and_actually_enters_dvs_mode() {
    let report = campaign();
    assert!(report.energy_savings() >= MIN_ENERGY_SAVINGS);
    assert!(report.dvs().dvs_fraction >= MIN_DVS_READ_FRACTION);
    // The nominal arm, by construction, never leaves nominal sensing.
    assert!(report.nominal().dvs_fraction == 0.0);
}

#[test]
fn sensing_lag_is_bounded_and_loop_sees_only_readings() {
    let report = campaign();
    for r in &report.runs {
        for o in [&r.nominal, &r.dvs] {
            assert!(o.worst_lag_error.is_finite());
            assert!(o.mean_lag_error <= o.worst_lag_error);
            // Decisions were taken on reported values: the recorded
            // reported trace must differ from the true trace somewhere
            // (a sensor, not an oracle).
            assert!(o
                .records
                .iter()
                .any(|rec| rec.reported_hottest.0 != rec.true_hottest.0));
        }
    }
}

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    let single = run_campaign(&gate_config(1));
    assert_eq!(&single, campaign(), "thread count changed the campaign");
}
