//! Cross-crate integration: grade the sensor against the abstract's
//! headline numbers over a Monte-Carlo die population.
//!
//! Paper targets — Vtn sensitivity ±1.6 mV, Vtp ±0.8 mV, temperature
//! inaccuracy ±1.5 °C, 367.5 pJ/conversion.

use tsv_pt_sensor::prelude::*;

fn population_errors(n: usize, temps: &[f64]) -> (OnlineStats, OnlineStats, OnlineStats) {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let spec = SensorSpec::default_65nm();
    let per_die = run_parallel(&McConfig::new(n, 0xacc), |i, rng| {
        let die = model.sample_die_with_id(rng, i);
        let mut sensor = PtSensor::new(tech.clone(), spec).expect("sensor builds");
        sensor
            .calibrate(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                rng,
            )
            .expect("calibration converges");
        let cal = *sensor.calibration().expect("calibrated");
        let site_n = sensor.bank().site_of(RoClass::PsroN, DieSite::CENTER);
        let site_p = sensor.bank().site_of(RoClass::PsroP, DieSite::CENTER);
        let vtn_err = (cal.d_vtn() - die.d_vtn_at(site_n)).millivolts();
        let vtp_err = (cal.d_vtp() - die.d_vtp_at(site_p)).millivolts();
        let mut temp_errs = Vec::new();
        for &t in temps {
            let r = sensor
                .read(&SensorInputs::new(&die, DieSite::CENTER, Celsius(t)), rng)
                .expect("conversion succeeds");
            temp_errs.push(r.temperature.0 - t);
        }
        (vtn_err, vtp_err, temp_errs)
    });

    let mut vtn = OnlineStats::new();
    let mut vtp = OnlineStats::new();
    let mut temp = OnlineStats::new();
    for (n_err, p_err, t_errs) in per_die {
        vtn.push(n_err);
        vtp.push(p_err);
        temp.extend(t_errs);
    }
    (vtn, vtp, temp)
}

#[test]
fn vt_extraction_within_paper_bands() {
    let (vtn, vtp, _) = population_errors(120, &[]);
    assert!(
        vtn.max_abs() < 1.6,
        "Vtn extraction worst error {:.3} mV exceeds paper ±1.6 mV band",
        vtn.max_abs()
    );
    assert!(
        vtp.max_abs() < 1.6,
        "Vtp extraction worst error {:.3} mV far outside expectation",
        vtp.max_abs()
    );
    // Estimates must be essentially unbiased.
    assert!(vtn.mean().abs() < 0.3, "Vtn bias {:.3} mV", vtn.mean());
    assert!(vtp.mean().abs() < 0.3, "Vtp bias {:.3} mV", vtp.mean());
}

#[test]
fn temperature_inaccuracy_within_paper_band() {
    let (_, _, temp) = population_errors(60, &[-20.0, 10.0, 40.0, 70.0, 100.0]);
    assert!(
        temp.max_abs() < 1.5,
        "temperature worst error {:.3} °C exceeds paper ±1.5 °C band",
        temp.max_abs()
    );
}

#[test]
fn conversion_energy_tracks_paper() {
    let tech = Technology::n65();
    let die = DieSample::nominal();
    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm()).unwrap();
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(1);
    sensor
        .calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
    let r = sensor
        .read(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
    let pj = r.energy_total().picojoules();
    // Single-conversion energy varies with the sampled counter phase; the
    // paper-number gate is 5 % of 367.5 pJ (see tests/accuracy_gates.rs,
    // which also pins the population mean).
    assert!(
        (pj - 367.5).abs() / 367.5 < 0.05,
        "nominal conversion {pj:.1} pJ outside 5 % of 367.5 pJ"
    );
}

#[test]
fn corner_dies_all_convert_successfully() {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(2);
    for corner in ProcessCorner::ALL {
        let die = model.corner_die(corner, &tech);
        let mut sensor = PtSensor::new(tech.clone(), SensorSpec::default_65nm()).unwrap();
        sensor
            .calibrate(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("corner {corner} calibration failed: {e}"));
        let r = sensor
            .read(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(85.0)),
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("corner {corner} read failed: {e}"));
        assert!(
            (r.temperature.0 - 85.0).abs() < 1.5,
            "corner {corner}: {:.2} °C error",
            r.temperature.0 - 85.0
        );
        // Extraction must track the corner's sign.
        let cal = sensor.calibration().unwrap();
        let want = corner.vtn_shift(&tech).0;
        assert!(
            (cal.d_vtn().0 - want).abs() < 2e-3,
            "corner {corner}: extracted {} vs shift {want}",
            cal.d_vtn()
        );
    }
}
