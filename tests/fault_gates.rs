//! Tier-1 robustness gates over the R1 fault-injection campaign.
//!
//! These assert the ISSUE contract on a fixed-seed 100-die population:
//! catastrophic faults (dead RO stages, calibration-register SEUs, counter
//! stuck-at bits) are detected ≥ 99 % of the time, no un-flagged reading is
//! silently wrong by more than 5 °C / 10 mV, degraded temperature-only mode
//! stays within ±3 °C with a dead PSRO bank, the hardened configuration
//! never falsely flags a healthy die, and the whole campaign is
//! deterministic under its fixed seed.

use ptsim_bench::experiments::r1_faults::{run_campaign, CampaignResult, R1_SEED};
use std::sync::OnceLock;

const GATE_DIES: usize = 100;

fn campaign() -> &'static CampaignResult {
    static CAMPAIGN: OnceLock<CampaignResult> = OnceLock::new();
    CAMPAIGN.get_or_init(|| run_campaign(GATE_DIES, R1_SEED))
}

#[test]
fn catastrophic_faults_are_detected() {
    let c = campaign();
    assert_eq!(c.n_dies, GATE_DIES);
    for cell in c.cells.iter().filter(|c| c.catastrophic) {
        assert!(
            cell.detection_rate() >= 0.99,
            "{} @ severity {}: detection {:.3} below the 99 % floor",
            cell.id,
            cell.severity,
            cell.detection_rate()
        );
    }
    assert!(c.catastrophic_detection_rate() >= 0.99);
}

#[test]
fn no_silent_data_corruption() {
    let c = campaign();
    for cell in &c.cells {
        assert_eq!(
            cell.sdc,
            0,
            "{} @ severity {}: {} silent readings beyond 5 °C / 10 mV \
             (worst silent T err {:.2} °C, vt err {:.2} mV)",
            cell.id,
            cell.severity,
            cell.sdc,
            cell.worst_silent_temp_err,
            cell.worst_silent_vt_err_mv
        );
        if cell.junction_comparable {
            assert!(
                cell.worst_silent_temp_err <= 5.0,
                "{} @ severity {}: silent temperature error {:.2} °C",
                cell.id,
                cell.severity,
                cell.worst_silent_temp_err
            );
            assert!(
                cell.worst_silent_vt_err_mv <= 10.0,
                "{} @ severity {}: silent threshold error {:.2} mV",
                cell.id,
                cell.severity,
                cell.worst_silent_vt_err_mv
            );
        }
    }
    assert_eq!(c.total_sdc(), 0);
}

#[test]
fn degraded_temperature_only_mode_stays_within_budget() {
    let c = campaign();
    let mut demos = 0;
    for cell in c.cells.iter().filter(|c| c.worst_degraded_temp_err > 0.0) {
        demos += 1;
        assert!(
            cell.worst_degraded_temp_err <= 3.0,
            "{} @ severity {}: degraded temperature-only error {:.2} °C over ±3 °C",
            cell.id,
            cell.severity,
            cell.worst_degraded_temp_err
        );
    }
    // The dead-PSRO-bank demo must actually exercise degraded mode at every
    // severity.
    assert!(demos >= 3, "only {demos} cells entered degraded mode");
}

#[test]
fn healthy_hardened_population_is_never_falsely_flagged() {
    assert_eq!(campaign().healthy_flagged, 0);
}

#[test]
fn calibration_seu_strikes_are_scrubbed_and_recovered() {
    let c = campaign();
    // One scrub attempt per die per severity (the seu cell always refuses).
    assert_eq!(c.seu_scrub_attempts, 3 * GATE_DIES);
    assert_eq!(c.seu_scrub_recovered, c.seu_scrub_attempts);
}

#[test]
fn campaign_is_deterministic_under_its_fixed_seed() {
    let a = run_campaign(12, R1_SEED);
    let b = run_campaign(12, R1_SEED);
    assert_eq!(a, b);
}
