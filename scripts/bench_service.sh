#!/usr/bin/env bash
# Manual service perf gate — runs the fleet-daemon load generator and
# records the trajectory in BENCH_SERVICE.json (one JSON object per line:
# a meta header carrying the git rev, then one result per scenario with
# p50/p99 latency and conversions/sec).
#
# Like scripts/bench.sh, this is NOT part of scripts/ci.sh pass/fail —
# timing on shared machines is too noisy to gate on. ci.sh smoke-runs the
# same binary with a tiny request count and validates the JSON schema only.
#
# Usage: scripts/bench_service.sh [label]
#   label  optional run label (BENCH_SERVICE.<label>.json); default appends
#          to BENCH_SERVICE.json so successive runs accumulate a trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-}"
out="BENCH_SERVICE${label:+.$label}.json"

PTSIM_BENCH_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
PTSIM_BENCH_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
export PTSIM_BENCH_GIT_REV PTSIM_BENCH_DATE

# Pin the request count for recorded runs: the loadgen's own warm-up
# (die calibration + one untimed call per connection) plus a fixed sample
# size keeps successive trajectory entries comparable.
PTSIM_LOADGEN_REQUESTS="${PTSIM_LOADGEN_REQUESTS:-600}"
export PTSIM_LOADGEN_REQUESTS

cargo build --release --offline -p ptsim-bench --bin service_loadgen

touch "$out"
cargo run -q --release --offline -p ptsim-bench --bin service_loadgen >> "$out"

echo "wrote $out" >&2
cat "$out"
