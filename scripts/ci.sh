#!/usr/bin/env bash
# Tier-1 verification gate — hermetic, offline, zero external dependencies.
#
# The workspace must build and test from a clean checkout with no network
# and an empty cargo registry cache. Every step below runs with --offline;
# if any step tries to touch the registry, that is itself a regression
# (an external dependency crept back into a Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --all-targets

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --offline (deny warnings)"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --offline (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace --quiet

echo "==> R1 fault-campaign smoke (12 dies) + metrics snapshot schema"
PTSIM_BENCH_DIES=12 PTSIM_METRICS_JSON=target/metrics_smoke.json \
    cargo run -q --release --offline -p ptsim-bench --bin fault_campaign > /dev/null
python3 - target/metrics_smoke.json <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert set(snap) == {"counters", "gauges", "histograms"}, sorted(snap)
for name, v in snap["counters"].items():
    assert isinstance(v, int) and v >= 0, (name, v)
for name, v in snap["gauges"].items():
    assert isinstance(v, (int, float)), (name, v)
for name, h in snap["histograms"].items():
    assert set(h) == {"lo", "hi", "under", "over", "total", "counts"}, (name, sorted(h))
    assert sum(h["counts"]) == h["total"], name
# The campaign must actually have flowed through the instrumented pipeline.
assert snap["counters"]["pipeline.calibrations"] > 0
assert snap["counters"]["pipeline.conversions"] > 0
assert snap["counters"]["acquire.replicas"] > 0
assert snap["counters"]["mc.dies"] == 12
assert snap["histograms"]["energy.conversion_pj"]["total"] > 0
print(f"metrics snapshot: {len(snap['counters'])} counters, "
      f"{len(snap['gauges'])} gauges, {len(snap['histograms'])} histograms, schema OK")
EOF

echo "==> R3 DTM-campaign smoke (8 dies, closed-loop DVFS gates)"
PTSIM_BENCH_DIES=8 PTSIM_DTM_STEPS=80 \
    cargo run -q --release --offline -p ptsim-bench --bin dtm_campaign > /dev/null

echo "==> fleet-service smoke (daemon on ephemeral port, hardened protocol)"
: > target/fleetd_smoke.log
PTSIM_FLEET_DIES=8 PTSIM_FLEET_SHARDS=2 \
    cargo run -q --release --offline -p ptsim-service --bin fleetd \
    > target/fleetd_smoke.log &
FLEETD_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" target/fleetd_smoke.log 2>/dev/null && break
    sleep 0.1
done
FLEET_ADDR=$(sed -n 's/^ptsim-fleetd listening on //p' target/fleetd_smoke.log)
python3 - "$FLEET_ADDR" <<'EOF'
import json, socket, struct, sys
host, port = sys.argv[1].rsplit(":", 1)

def recvn(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        assert chunk, "connection closed mid-read"
        buf += chunk
    return buf

def read_frame(sock):
    (n,) = struct.unpack(">I", recvn(sock, 4))
    return recvn(sock, n)

def call(sock, payload: bytes):
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    return json.loads(read_frame(sock))

s = socket.create_connection((host, int(port)), timeout=60)
r = call(s, json.dumps({"op": "read", "die": 3, "temp_c": 80.0}).encode())
assert r["ok"] and r["op"] == "read" and r["quality"] == "nominal", r
assert abs(r["temp_c"] - 80.0) < 2.0 and r["energy_pj"] > 0, r
c = call(s, json.dumps({"op": "calibrate", "die": 3}).encode())
assert c["ok"] and c["op"] == "calibrate", c
h = call(s, json.dumps({"op": "health"}).encode())
assert h["ok"] and {sh["state"] for sh in h["shards"]} == {"up"}, h
assert h["counters"]["svc.served"] >= 2, h
assert h["coalesce_max"] >= 1 and h["wire_version"] == 2, h
b = call(s, json.dumps({"op": "batch_read", "die0": 1, "count": 3, "temp_c": 70.0}).encode())
assert b["ok"] and b["op"] == "batch_read" and len(b["items"]) == 3, b
assert [it["die"] for it in b["items"]] == [1, 3, 5], b
assert all(it["ok"] and abs(it["temp_c"] - 70.0) < 2.0 for it in b["items"]), b
overrun = call(s, json.dumps({"op": "batch_read", "die0": 1, "count": 5, "temp_c": 70.0}).encode())
assert not overrun["ok"] and overrun["error"] == "bad_request", overrun
bad = call(s, b"definitely not json")
assert not bad["ok"] and bad["error"] == "bad_request", bad
oob = call(s, json.dumps({"op": "read", "die": 3, "temp_c": 9999}).encode())
assert not oob["ok"] and oob["error"] == "bad_request", oob

# A v2 binary client against the same daemon: hello negotiation, then one
# fixed-width little-endian read while the JSON connection stays v1.
b2 = socket.create_connection((host, int(port)), timeout=60)
b2.sendall(b"PTSV" + bytes([2]))
hello = recvn(b2, 5)
assert hello[:4] == b"PTSV" and hello[4] == 2, hello
req = struct.pack("<BQdBQ", 1, 5, 72.0, 1, 30_000)  # read die 5 @ 72C
b2.sendall(struct.pack(">I", len(req)) + req)
tag, die, temp, vtn, vtp, pj, q = struct.unpack("<BQddddB", read_frame(b2))
assert tag == 1 and die == 5 and abs(temp - 72.0) < 2.0, (tag, die, temp)
assert pj > 0 and q == 0, (pj, q)
# JSON (v1) still works on the original connection after the binary round.
again = call(s, json.dumps({"op": "read", "die": 5, "temp_c": 72.0}).encode())
assert again["ok"] and abs(again["temp_c"] - 72.0) < 2.0, again
b2.close()

bye = call(s, json.dumps({"op": "shutdown"}).encode())
assert bye["ok"] and bye["op"] == "shutdown", bye
print("service smoke: read/calibrate/batch/health/v2-binary/malformed/"
      "typed-rejection/shutdown OK")
EOF
wait "$FLEETD_PID"

echo "==> service loadgen smoke + BENCH_SERVICE schema"
PTSIM_LOADGEN_REQUESTS=24 PTSIM_LOADGEN_DIES=8 \
    cargo run -q --release --offline -p ptsim-bench --bin service_loadgen \
    > target/bench_service_smoke.json
python3 - target/bench_service_smoke.json <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines and "meta" in lines[0], lines[:1]
names = set()
for obj in lines[1:]:
    assert {"name", "p50_us", "p99_us", "conversions_per_sec", "samples"} <= obj.keys(), obj
    assert obj["samples"] > 0 and obj["p50_us"] > 0, obj
    assert obj["p99_us"] >= obj["p50_us"] and obj["conversions_per_sec"] > 0, obj
    names.add(obj["name"])
assert {"service/read_seq", "service/read_seq_v2", "service/read_concurrent",
        "service/read_coalesced", "service/batch_read",
        "service/health"} <= names, names
print(f"service bench: {len(lines) - 1} scenarios, schema OK")
EOF

echo "==> solver-equivalence smoke (GS oracle vs CG vs multigrid, release FP paths)"
# Debug-mode `cargo test` above already runs the full equivalence suites;
# this re-runs the cross-solver and bit-determinism gates against the
# release binaries, whose float codegen is what the benches and the fault
# campaign actually execute.
cargo test -q --release --offline -p ptsim-thermal --test properties all_three_steady_solvers_agree
cargo test -q --release --offline -p ptsim-thermal --test determinism

echo "==> SoA-vs-scalar bit-identity smoke (lane kernel, release FP paths)"
# Same rationale: the lane kernel's bit-identity to the scalar oracle must
# hold under the release float codegen the benches and the fleet daemon run.
cargo test -q --release --offline -p ptsim-core --test lane_equivalence

echo "==> bench smoke (1 sample, parse-only — timing never gates CI)"
# Keeps every bench binary buildable and its JSON output machine-parseable;
# scripts/bench.sh is the manual perf run that records BENCH_PIPELINE.json.
for b in end_to_end pipeline solver thermal monte_carlo; do
    PTSIM_BENCH_SAMPLES=1 cargo bench -q --offline -p ptsim-bench --bench "$b"
done | python3 -c '
import json, sys
lines = [l for l in sys.stdin if l.strip()]
assert lines, "bench smoke emitted no output"
names = []
for l in lines:
    obj = json.loads(l)
    if "meta" in obj:
        continue
    if "metrics" in obj:
        snap = obj["metrics"]
        assert {"counters", "gauges", "histograms"} <= snap.keys(), l
        continue
    assert {"name", "median_ns", "samples"} <= obj.keys(), l
    names.append(obj["name"])
assert names, "bench smoke emitted no results"
assert "steady_state/64" in names, "multigrid 64-grid bench missing"
assert "steady_state_gs/16" in names, "Gauss-Seidel oracle bench missing"
assert "transient_step_warm_16x16x4" in names, "warm transient-step bench missing"
assert "batch_convert_100" in names, "lane-kernel population bench missing"
assert "batch_convert_scalar_100" in names, "scalar-oracle population bench missing"
print(f"bench smoke: {len(names)} benchmarks, JSON OK")
'

echo "tier-1 gate: OK"
