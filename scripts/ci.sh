#!/usr/bin/env bash
# Tier-1 verification gate — hermetic, offline, zero external dependencies.
#
# The workspace must build and test from a clean checkout with no network
# and an empty cargo registry cache. Every step below runs with --offline;
# if any step tries to touch the registry, that is itself a regression
# (an external dependency crept back into a Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --all-targets

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --offline (deny warnings)"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --offline (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace --quiet

echo "==> R1 fault-campaign smoke (12 dies) + metrics snapshot schema"
PTSIM_BENCH_DIES=12 PTSIM_METRICS_JSON=target/metrics_smoke.json \
    cargo run -q --release --offline -p ptsim-bench --bin fault_campaign > /dev/null
python3 - target/metrics_smoke.json <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert set(snap) == {"counters", "gauges", "histograms"}, sorted(snap)
for name, v in snap["counters"].items():
    assert isinstance(v, int) and v >= 0, (name, v)
for name, v in snap["gauges"].items():
    assert isinstance(v, (int, float)), (name, v)
for name, h in snap["histograms"].items():
    assert set(h) == {"lo", "hi", "under", "over", "total", "counts"}, (name, sorted(h))
    assert sum(h["counts"]) == h["total"], name
# The campaign must actually have flowed through the instrumented pipeline.
assert snap["counters"]["pipeline.calibrations"] > 0
assert snap["counters"]["pipeline.conversions"] > 0
assert snap["counters"]["acquire.replicas"] > 0
assert snap["counters"]["mc.dies"] == 12
assert snap["histograms"]["energy.conversion_pj"]["total"] > 0
print(f"metrics snapshot: {len(snap['counters'])} counters, "
      f"{len(snap['gauges'])} gauges, {len(snap['histograms'])} histograms, schema OK")
EOF

echo "==> solver-equivalence smoke (GS oracle vs CG vs multigrid, release FP paths)"
# Debug-mode `cargo test` above already runs the full equivalence suites;
# this re-runs the cross-solver and bit-determinism gates against the
# release binaries, whose float codegen is what the benches and the fault
# campaign actually execute.
cargo test -q --release --offline -p ptsim-thermal --test properties all_three_steady_solvers_agree
cargo test -q --release --offline -p ptsim-thermal --test determinism

echo "==> bench smoke (1 sample, parse-only — timing never gates CI)"
# Keeps every bench binary buildable and its JSON output machine-parseable;
# scripts/bench.sh is the manual perf run that records BENCH_PIPELINE.json.
for b in end_to_end pipeline solver thermal monte_carlo; do
    PTSIM_BENCH_SAMPLES=1 cargo bench -q --offline -p ptsim-bench --bench "$b"
done | python3 -c '
import json, sys
lines = [l for l in sys.stdin if l.strip()]
assert lines, "bench smoke emitted no output"
names = []
for l in lines:
    obj = json.loads(l)
    if "meta" in obj:
        continue
    if "metrics" in obj:
        snap = obj["metrics"]
        assert {"counters", "gauges", "histograms"} <= snap.keys(), l
        continue
    assert {"name", "median_ns", "samples"} <= obj.keys(), l
    names.append(obj["name"])
assert names, "bench smoke emitted no results"
assert "steady_state/64" in names, "multigrid 64-grid bench missing"
assert "steady_state_gs/16" in names, "Gauss-Seidel oracle bench missing"
print(f"bench smoke: {len(names)} benchmarks, JSON OK")
'

echo "tier-1 gate: OK"
