#!/usr/bin/env bash
# Manual perf gate — runs the ptsim_bench::harness benches and records the
# trajectory in BENCH_PIPELINE.json (one JSON object per line: a meta header
# per bench binary, then one result per benchmark).
#
# This is NOT part of scripts/ci.sh pass/fail (timing on shared CI machines
# is too noisy to gate on); run it manually on a quiet machine before and
# after perf-relevant changes and compare medians. ci.sh only smoke-runs the
# same binaries with a 1-sample config to keep them buildable and parseable.
#
# The thermal bench times the multigrid production solver at
# steady_state/{8,16,32,64} plus the Gauss-Seidel oracle at
# steady_state_gs/16; both solvers stay on the trajectory so a regression
# in either is attributable from the medians alone.
#
# Usage: scripts/bench.sh [label]
#   label  optional run label recorded in the output filename
#          (BENCH_PIPELINE.<label>.json); default appends to
#          BENCH_PIPELINE.json, so successive runs accumulate a trajectory
#          (each run starts with its own meta lines carrying the git rev).
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-}"
out="BENCH_PIPELINE${label:+.$label}.json"

# Run metadata is passed INTO the harness (the harness itself reads no
# clock and runs no git — bench binaries stay hermetic).
PTSIM_BENCH_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
PTSIM_BENCH_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
export PTSIM_BENCH_GIT_REV PTSIM_BENCH_DATE

cargo build --release --offline -p ptsim-bench --benches

touch "$out"
for b in end_to_end pipeline solver thermal monte_carlo; do
    echo "==> bench $b" >&2
    cargo bench -q --offline -p ptsim-bench --bench "$b" >> "$out"
done

echo "wrote $out" >&2
cat "$out"
