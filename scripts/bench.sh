#!/usr/bin/env bash
# Manual perf gate — runs the ptsim_bench::harness benches and records the
# trajectory in BENCH_PIPELINE.json (one JSON object per line: a meta header
# per bench binary, then one result per benchmark).
#
# This is NOT part of scripts/ci.sh pass/fail (timing on shared CI machines
# is too noisy to gate on); run it manually on a quiet machine before and
# after perf-relevant changes and compare medians. ci.sh only smoke-runs the
# same binaries with a 1-sample config to keep them buildable and parseable.
#
# The thermal bench times the multigrid production solver at
# steady_state/{8,16,32,64} plus the Gauss-Seidel oracle at
# steady_state_gs/16; both solvers stay on the trajectory so a regression
# in either is attributable from the medians alone.
#
# Usage: scripts/bench.sh [label]
#   label  optional run label recorded in the output filename
#          (BENCH_PIPELINE.<label>.json); default appends to
#          BENCH_PIPELINE.json, so successive runs accumulate a trajectory
#          (each run starts with its own meta lines carrying the git rev).
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-}"
out="BENCH_PIPELINE${label:+.$label}.json"

# Run metadata is passed INTO the harness (the harness itself reads no
# clock and runs no git — bench binaries stay hermetic).
PTSIM_BENCH_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
PTSIM_BENCH_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
export PTSIM_BENCH_GIT_REV PTSIM_BENCH_DATE

# Pin the per-benchmark warm-up so every recorded run measures the same
# steady state regardless of caller environment; successive trajectory
# entries are only comparable when this phase is identical. (Regression
# comparisons should read min_ns, not median_ns — see EXPERIMENTS.md.)
PTSIM_BENCH_WARMUP_US=500000
export PTSIM_BENCH_WARMUP_US

cargo build --release --offline -p ptsim-bench --benches

# Discarded pre-pass: the first recorded bench otherwise pays cold page
# cache, branch predictors, and CPU-governor ramp for the whole process
# fleet, and lands in the trajectory as a phantom regression.
echo "==> warm-up pre-pass (discarded)" >&2
PTSIM_BENCH_SAMPLES=3 cargo bench -q --offline -p ptsim-bench --bench end_to_end > /dev/null

touch "$out"
for b in end_to_end pipeline solver thermal monte_carlo; do
    echo "==> bench $b" >&2
    cargo bench -q --offline -p ptsim-bench --bench "$b" >> "$out"
done

echo "wrote $out" >&2
cat "$out"
